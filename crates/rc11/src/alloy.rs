//! The scoped RC11 model as bounded relational constraints.
//!
//! Mirrors [`crate::relations`] in the Alloy-style language, for use in
//! the combined mapping-verification model (paper §5.2, Figure 17). The
//! memory-order lattice is encoded as cumulative flag sets rather than a
//! partition, which keeps the derived-relation definitions close to
//! Figure 10.

use relational::{Expr, Formula, Schema, VarGen};

/// The declared relations of a scoped C++ event universe.
#[derive(Debug, Clone)]
pub struct CVocab {
    /// Live events.
    pub ev: Expr,
    /// Read events.
    pub read: Expr,
    /// Write events.
    pub write: Expr,
    /// Fence events.
    pub fence: Expr,
    /// Atomic events (`⊒ RLX`).
    pub atomic: Expr,
    /// Events with acquire semantics (`⊒ ACQ`: acq, acq_rel, sc reads/fences).
    pub acq: Expr,
    /// Events with release semantics (`⊒ REL`).
    pub rel: Expr,
    /// `memory_order_seq_cst` events.
    pub sc: Expr,
    /// Scope qualifiers (partition of live events).
    pub scope_cta: Expr,
    /// `.gpu`-scoped events.
    pub scope_gpu: Expr,
    /// `.sys`-scoped events.
    pub scope_sys: Expr,
    /// Event → location (memory events).
    pub loc: Expr,
    /// Event → thread.
    pub thread: Expr,
    /// Sequenced-before (strict total order per thread).
    pub sb: Expr,
    /// Reads-from.
    pub rf: Expr,
    /// Modification order (strict total order per location over writes).
    pub mo: Expr,
    /// RMW pairing (read half → write half).
    pub rmw: Expr,
    /// Thread × Thread: same CTA (constant).
    pub same_cta: Expr,
    /// Thread × Thread: same GPU (constant).
    pub same_gpu: Expr,
    /// All threads.
    pub threads: Expr,
}

impl CVocab {
    /// Declares a fresh scoped C++ vocabulary with the given prefix.
    pub fn declare(schema: &mut Schema, prefix: &str) -> CVocab {
        let mut r =
            |name: &str, arity| Expr::Rel(schema.relation(&format!("{prefix}{name}"), arity));
        CVocab {
            ev: r("ev", 1),
            read: r("read", 1),
            write: r("write", 1),
            fence: r("fence", 1),
            atomic: r("atomic", 1),
            acq: r("acq", 1),
            rel: r("rel", 1),
            sc: r("sc", 1),
            scope_cta: r("scope_cta", 1),
            scope_gpu: r("scope_gpu", 1),
            scope_sys: r("scope_sys", 1),
            loc: r("loc", 2),
            thread: r("thread", 2),
            sb: r("sb", 2),
            rf: r("rf", 2),
            mo: r("mo", 2),
            rmw: r("rmw", 2),
            same_cta: r("same_cta", 2),
            same_gpu: r("same_gpu", 2),
            threads: r("threads", 1),
        }
    }

    /// Memory events.
    pub fn memory(&self) -> Expr {
        self.read.union(&self.write)
    }

    /// Same-location pairs of distinct memory events.
    pub fn same_loc(&self) -> Expr {
        self.loc.join(&self.loc.transpose()).difference(&Expr::Iden)
    }

    /// Scope inclusion: `(a, b)` when `a`'s scope includes `b`'s thread.
    pub fn inclusion(&self) -> Expr {
        let via = |scope: &Expr, same: &Expr| -> Expr {
            crate::alloy_bracket(scope).join(&self.thread.join(same).join(&self.thread.transpose()))
        };
        let all_threads = self.threads.product(&self.threads);
        via(&self.scope_cta, &self.same_cta)
            .union(&via(&self.scope_gpu, &self.same_gpu))
            .union(&via(&self.scope_sys, &all_threads))
    }

    /// The `incl` relation: mutually inclusive pairs.
    pub fn incl(&self) -> Expr {
        let one_way = self.inclusion();
        one_way.intersect(&one_way.transpose())
    }

    /// `sb` restricted to same-location memory accesses.
    pub fn sb_loc(&self) -> Expr {
        self.sb.intersect(&self.same_loc())
    }

    /// Reads-before: `rf⁻¹ ; mo − iden`.
    pub fn rb(&self) -> Expr {
        self.rf.transpose().join(&self.mo).difference(&Expr::Iden)
    }

    /// Extended communication: `(rf ∪ mo ∪ rb)⁺`.
    pub fn eco(&self) -> Expr {
        self.rf.union(&self.mo).union(&self.rb()).closure()
    }

    /// Release sequences: `[W] ; sb|loc? ; [W∧atomic] ; ((incl ∩ rf) ; rmw)*`.
    pub fn rs(&self) -> Expr {
        let w = crate::alloy_bracket(&self.write);
        let w_at = crate::alloy_bracket(&self.write.intersect(&self.atomic));
        let step = self.incl().intersect(&self.rf).join(&self.rmw);
        w.join(&self.sb_loc().optional())
            .join(&w_at)
            .join(&step.reflexive_closure())
    }

    /// Synchronizes-with (Figure 10b).
    pub fn sw(&self) -> Expr {
        let e_rel = crate::alloy_bracket(&self.rel);
        let e_acq = crate::alloy_bracket(&self.acq);
        let f = crate::alloy_bracket(&self.fence);
        let r_at = crate::alloy_bracket(&self.read.intersect(&self.atomic));
        let f_sb_opt = f.join(&self.sb).optional();
        let sb_f_opt = self.sb.join(&f).optional();
        e_rel
            .join(&f_sb_opt)
            .join(&self.rs())
            .join(&self.incl().intersect(&self.rf))
            .join(&r_at)
            .join(&sb_f_opt)
            .join(&e_acq)
    }

    /// Happens-before: `(sb ∪ (incl ∩ sw))⁺`.
    pub fn hb(&self) -> Expr {
        self.sb.union(&self.incl().intersect(&self.sw())).closure()
    }

    /// SC-before (Figure 10b).
    pub fn scb(&self) -> Expr {
        let hb = self.hb();
        let sb_nloc = self.sb.difference(&self.sb_loc());
        let hb_loc = hb.intersect(&self.same_loc());
        self.sb
            .union(&sb_nloc.join(&hb).join(&sb_nloc))
            .union(&hb_loc)
            .union(&self.mo)
            .union(&self.rb())
    }

    /// Partial-SC (Figure 10b): `psc_base ∪ psc_F`.
    pub fn psc(&self) -> Expr {
        let hb = self.hb();
        let hb_opt = hb.optional();
        let e_sc = crate::alloy_bracket(&self.sc);
        let f_sc = crate::alloy_bracket(&self.fence.intersect(&self.sc));
        let left = e_sc.union(&f_sc.join(&hb_opt));
        let right = e_sc.union(&hb_opt.join(&f_sc));
        let psc_base = left.join(&self.scb()).join(&right);
        let hb_eco_hb = hb.join(&self.eco()).join(&hb);
        let psc_f = f_sc.join(&hb.union(&hb_eco_hb)).join(&f_sc);
        psc_base.union(&psc_f)
    }

    /// Structural well-formedness.
    #[allow(clippy::vec_init_then_push)] // the pushes are grouped by axiom, with commentary
    pub fn well_formed(&self, fresh: &mut VarGen) -> Formula {
        let ev = &self.ev;
        let mem = self.memory();
        let mut fs = Vec::new();

        fs.push(crate::alloy_partition(
            ev,
            &[&self.read, &self.write, &self.fence],
        ));
        fs.push(crate::alloy_partition(
            ev,
            &[&self.scope_cta, &self.scope_gpu, &self.scope_sys],
        ));

        // Order-flag discipline (Figure 10a).
        fs.push(self.atomic.in_(ev));
        fs.push(self.acq.in_(&self.atomic));
        fs.push(self.rel.in_(&self.atomic));
        fs.push(self.sc.in_(&self.atomic));
        fs.push(self.acq.in_(&self.read.union(&self.fence)));
        fs.push(self.rel.in_(&self.write.union(&self.fence)));
        // SC events have the strongest applicable sides.
        fs.push(self.sc.intersect(&self.read).in_(&self.acq));
        fs.push(self.sc.intersect(&self.write).in_(&self.rel));
        fs.push(
            self.sc
                .intersect(&self.fence)
                .in_(&self.acq.intersect(&self.rel)),
        );
        // Fences are atomic and at least one-sided.
        fs.push(self.fence.in_(&self.atomic));
        fs.push(self.fence.in_(&self.acq.union(&self.rel)));

        // loc / thread functions.
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            mem.clone(),
            Expr::Var(v).join(&self.loc).one(),
        ));
        fs.push(self.loc.join(&Expr::Univ).in_(&mem));
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            ev.clone(),
            Expr::Var(v).join(&self.thread).one(),
        ));
        fs.push(self.thread.join(&Expr::Univ).in_(ev));
        fs.push(Expr::Univ.join(&self.thread).in_(&self.threads));

        // sb: strict total order per thread.
        let same_thread = self
            .thread
            .join(&self.thread.transpose())
            .difference(&Expr::Iden);
        fs.push(relational::patterns::strict_partial_order(&self.sb));
        fs.push(self.sb.in_(&same_thread));
        fs.push(same_thread.in_(&self.sb.union(&self.sb.transpose())));

        // rf: write→read, same loc, total and functional on reads
        // (the bounded model has no init writes, so every read must have a
        // source; this is the standard finitization).
        fs.push(self.rf.in_(&self.write.product(&self.read)));
        fs.push(self.rf.in_(&self.same_loc()));
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            self.read.clone(),
            self.rf.join(&Expr::Var(v)).one(),
        ));

        // mo: strict total order over writes per location.
        fs.push(relational::patterns::strict_partial_order(&self.mo));
        fs.push(
            self.mo
                .in_(&self.write.product(&self.write).intersect(&self.same_loc())),
        );
        let ww_same_loc = self.write.product(&self.write).intersect(&self.same_loc());
        fs.push(ww_same_loc.in_(&self.mo.union(&self.mo.transpose())));

        // rmw: atomic read→write pairs, same loc, sb-ordered, one each way.
        fs.push(self.rmw.in_(&self.read.product(&self.write)));
        fs.push(self.rmw.in_(&self.same_loc()));
        fs.push(self.rmw.in_(&self.sb));
        fs.push(self.rmw.join(&Expr::Univ).in_(&self.atomic));
        fs.push(Expr::Univ.join(&self.rmw).in_(&self.atomic));
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            self.read.clone(),
            Expr::Var(v).join(&self.rmw).lone(),
        ));
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            self.write.clone(),
            self.rmw.join(&Expr::Var(v)).lone(),
        ));
        // RMW atomicity of values is model-level (Atomicity axiom); an RMW
        // read must read from somewhere mo-adjacent — left to the axiom.

        for unary in [&self.read, &self.write, &self.fence] {
            fs.push(unary.in_(ev));
        }
        for binary in [&self.sb, &self.rf, &self.mo, &self.rmw] {
            fs.push(binary.in_(&ev.product(ev)));
        }

        Formula::and_all(fs)
    }

    /// The three scoped-RC11 axioms with names (Figure 10c; No-Thin-Air
    /// deliberately omitted).
    pub fn axioms_named(&self) -> Vec<(&'static str, Formula)> {
        use relational::patterns::{acyclic, irreflexive};
        vec![
            (
                "Coherence",
                irreflexive(&self.hb().join(&self.eco().optional())),
            ),
            (
                "Atomicity",
                self.rmw.intersect(&self.rb().join(&self.mo)).no(),
            ),
            ("SC", acyclic(&self.incl().intersect(&self.psc()))),
        ]
    }

    /// This execution is race-free: all conflicting cross-thread access
    /// pairs are happens-before related and (pairwise) adequately typed
    /// and scoped.
    pub fn race_free(&self) -> Formula {
        let mem = self.memory();
        let w = &self.write;
        let conflicting = mem
            .product(w)
            .union(&w.product(&mem))
            .intersect(&self.same_loc());
        let cross_thread = conflicting.difference(&self.thread.join(&self.thread.transpose()));
        let hb = self.hb();
        let hb_related = hb.union(&hb.transpose());
        let well_typed = crate::alloy_bracket(&self.atomic)
            .join(&self.incl())
            .join(&crate::alloy_bracket(&self.atomic));
        // Every cross-thread conflict is hb-ordered AND (atomic+inclusive).
        let racy = cross_thread.difference(&hb_related.intersect(&well_typed));
        racy.no()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{eval_expr, eval_formula, Instance, TupleSet};

    /// The MP execution (stale read) evaluated under the relational
    /// encoding must violate Coherence, matching the bit-matrix engine.
    #[test]
    fn relational_encoding_matches_bitmatrix_on_mp() {
        let mut schema = Schema::new();
        let v = CVocab::declare(&mut schema, "c_");
        // events: 0=Wna_x 1=Wrel_y 2=Racq_y 3=Rna_x 8=init_x(as plain W);
        // threads 4,5; locs 6,7.
        let n = 9;
        let mut inst = Instance::empty(&schema, n);
        let set = |inst: &mut Instance, e: &Expr, ts: TupleSet| {
            if let Expr::Rel(r) = e {
                inst.set(*r, ts);
            }
        };
        set(&mut inst, &v.ev, TupleSet::from_atoms([0, 1, 2, 3, 8]));
        set(&mut inst, &v.write, TupleSet::from_atoms([0, 1, 8]));
        set(&mut inst, &v.read, TupleSet::from_atoms([2, 3]));
        set(&mut inst, &v.fence, TupleSet::empty(1));
        set(&mut inst, &v.atomic, TupleSet::from_atoms([1, 2]));
        set(&mut inst, &v.acq, TupleSet::from_atoms([2]));
        set(&mut inst, &v.rel, TupleSet::from_atoms([1]));
        set(&mut inst, &v.sc, TupleSet::empty(1));
        set(&mut inst, &v.scope_cta, TupleSet::empty(1));
        set(&mut inst, &v.scope_gpu, TupleSet::empty(1));
        set(
            &mut inst,
            &v.scope_sys,
            TupleSet::from_atoms([0, 1, 2, 3, 8]),
        );
        set(
            &mut inst,
            &v.loc,
            TupleSet::from_pairs([(0, 6), (3, 6), (8, 6), (1, 7), (2, 7)]),
        );
        set(
            &mut inst,
            &v.thread,
            TupleSet::from_pairs([(0, 4), (1, 4), (2, 5), (3, 5), (8, 4)]),
        );
        // init_x sb-before thread 4's events per the Lahav convention is
        // not modeled here; make it an ordinary write by thread 4 that is
        // sb-first instead.
        set(
            &mut inst,
            &v.sb,
            TupleSet::from_pairs([(8, 0), (8, 1), (0, 1), (2, 3)]),
        );
        set(&mut inst, &v.rf, TupleSet::from_pairs([(1, 2), (8, 3)]));
        set(&mut inst, &v.mo, TupleSet::from_pairs([(8, 0)]));
        set(&mut inst, &v.rmw, TupleSet::empty(2));
        set(
            &mut inst,
            &v.same_cta,
            TupleSet::from_pairs([(4, 4), (5, 5)]),
        );
        set(
            &mut inst,
            &v.same_gpu,
            TupleSet::from_pairs([(4, 4), (5, 5), (4, 5), (5, 4)]),
        );
        set(&mut inst, &v.threads, TupleSet::from_atoms([4, 5]));

        let sw = eval_expr(&schema, &inst, &v.sw()).unwrap();
        assert!(sw.contains_pair(1, 2), "release sw acquire: {sw}");
        let hb = eval_expr(&schema, &inst, &v.hb()).unwrap();
        assert!(hb.contains_pair(0, 3), "hb reaches the data read");

        for (name, f) in &v.axioms_named() {
            let holds = eval_formula(&schema, &inst, f).unwrap();
            if *name == "Coherence" {
                assert!(!holds, "Coherence must be violated (hb;rb loop)");
            } else {
                assert!(holds, "{name} should hold");
            }
        }
    }
}
