//! Additional coverage of the scoped-RC11 derived relations: the psc_F
//! fence rule, scb components, release sequences through RMW chains, and
//! the deliberate absence of No-Thin-Air.

use memmodel::{Location, Register, RelMat, Scope, SystemLayout};
use rc11::model::build::*;
use rc11::relations::no_thin_air_holds;
use rc11::{check_all, CAxiom, CCandidate, CProgram, CRelations, MemOrder};

const X: Location = Location(0);
const Y: Location = Location(1);

/// psc_F: SC fences see eco-connected hb chains. The SB-with-fences shape
/// from `relations.rs` is covered there; here we check the `hb;eco;hb`
/// part in isolation: two fences each hb-adjacent to accesses that
/// communicate.
#[test]
fn psc_f_uses_eco_between_fences() {
    // T0: Wx=1; F_sc   T1: F_sc; Rx
    let p = CProgram::new(
        vec![
            vec![
                store(MemOrder::Rlx, Scope::Sys, X, 1),
                fence(MemOrder::Sc, Scope::Sys),
            ],
            vec![
                fence(MemOrder::Sc, Scope::Sys),
                load(MemOrder::Rlx, Scope::Sys, Register(0), X),
            ],
        ],
        SystemLayout::cta_per_thread(2),
    );
    let x = rc11::expand(&p);
    // events: 0=init_x 1=Wx 2=F0 3=F1 4=Rx ; Rx reads Wx.
    let c = CCandidate {
        rf_source: vec![1],
        mo: RelMat::from_pairs(x.len(), [(0, 1)]),
    };
    let rel = CRelations::compute(&x, &c);
    // hb(Wx, F0) via sb; eco via rf(Wx, Rx)… the chain F0 ←hb Wx →rf Rx →hb F1
    // is NOT of the form hb;eco;hb from F0 (hb goes the wrong way), so no
    // psc_F edge F0→F1 from this alone. But rb-free SB-like content gives
    // psc only when communication flows between the fence neighborhoods:
    // check that Rx reading Wx yields psc_F(F0, F1) = false here and the
    // execution is consistent.
    assert!(!rel.psc_f.get(2, 3));
    assert!(check_all(&x, &c).is_empty());
}

/// scb includes `sb|≠loc ; hb ; sb|≠loc`: same-thread different-location
/// steps bracket a cross-thread hb.
#[test]
fn scb_crosses_threads_through_hb() {
    // T0: Rz? keep simple: T0: Wsc_x; Wrel_y   T1: Racq_y; Rsc_x
    let p = CProgram::new(
        vec![
            vec![
                store(MemOrder::Sc, Scope::Sys, X, 1),
                store(MemOrder::Rel, Scope::Sys, Y, 1),
            ],
            vec![
                load(MemOrder::Acq, Scope::Sys, Register(0), Y),
                load(MemOrder::Sc, Scope::Sys, Register(1), X),
            ],
        ],
        SystemLayout::cta_per_thread(2),
    );
    let x = rc11::expand(&p);
    // events: 0=init_x 1=init_y 2=Wsc_x 3=Wrel_y 4=Racq_y 5=Rsc_x
    let c = CCandidate {
        rf_source: vec![3, 2], // acquire sees release; sc load sees sc store
        mo: RelMat::from_pairs(x.len(), [(0, 2), (1, 3)]),
    };
    let rel = CRelations::compute(&x, &c);
    // sb|≠loc: Wsc_x → Wrel_y (different locations); hb: Wrel_y → Racq_y
    // (sw); sb|≠loc: Racq_y → Rsc_x. So scb(Wsc_x, Rsc_x) and both are
    // SC events: psc_base applies and must be acyclic (it is — the sc
    // load reads the sc store).
    assert!(rel.scb.get(2, 5), "scb must bridge the hb chain");
    assert!(rel.psc_base.get(2, 5));
    assert!(check_all(&x, &c).is_empty());
}

/// A release sequence through a chain of two RMWs still synchronizes.
#[test]
fn release_sequence_through_rmw_chain() {
    let p = CProgram::new(
        vec![
            vec![store_na(X, 1), store(MemOrder::Rel, Scope::Sys, Y, 1)],
            vec![exchange(MemOrder::Rlx, Scope::Sys, Register(0), Y, 2)],
            vec![exchange(MemOrder::Rlx, Scope::Sys, Register(1), Y, 3)],
            vec![
                load(MemOrder::Acq, Scope::Sys, Register(2), Y),
                load_na(Register(3), X),
            ],
        ],
        SystemLayout::cta_per_thread(4),
    );
    let e = rc11::enumerate_executions(&p);
    // If the acquire reads 3 after the chain 1→2→3, the stale data read
    // is forbidden (rs extends through both RMWs).
    let stale = e.any_execution(|x| {
        x.final_registers[&(memmodel::ThreadId(1), Register(0))] == memmodel::Value(1)
            && x.final_registers[&(memmodel::ThreadId(2), Register(1))] == memmodel::Value(2)
            && x.final_registers[&(memmodel::ThreadId(3), Register(2))] == memmodel::Value(3)
            && x.final_registers[&(memmodel::ThreadId(3), Register(3))] == memmodel::Value(0)
    });
    assert!(!stale, "release sequence must survive the RMW chain");
    // And the fully-propagated outcome is reachable.
    let good = e.any_execution(|x| {
        x.final_registers[&(memmodel::ThreadId(3), Register(2))] == memmodel::Value(3)
            && x.final_registers[&(memmodel::ThreadId(3), Register(3))] == memmodel::Value(1)
    });
    assert!(good);
}

/// The scoped model deliberately omits No-Thin-Air: the LB rf cycle is
/// consistent, and `no_thin_air_holds` reports exactly when it is absent.
#[test]
fn no_thin_air_is_reported_but_not_enforced() {
    let p = CProgram::new(
        vec![
            vec![
                load(MemOrder::Rlx, Scope::Sys, Register(0), Y),
                store(MemOrder::Rlx, Scope::Sys, X, 1),
            ],
            vec![
                load(MemOrder::Rlx, Scope::Sys, Register(1), X),
                store(MemOrder::Rlx, Scope::Sys, Y, 1),
            ],
        ],
        SystemLayout::cta_per_thread(2),
    );
    let x = rc11::expand(&p);
    // events: 0=init_x 1=init_y 2=Ry 3=Wx 4=Rx 5=Wy
    let cyclic = CCandidate {
        rf_source: vec![5, 3], // Ry reads Wy, Rx reads Wx: sb ∪ rf cycle
        mo: RelMat::from_pairs(x.len(), [(0, 3), (1, 5)]),
    };
    assert!(
        check_all(&x, &cyclic).is_empty(),
        "LB cycle is consistent without No-Thin-Air"
    );
    assert!(!no_thin_air_holds(&x, &cyclic));

    let acyclic = CCandidate {
        rf_source: vec![1, 0],
        mo: RelMat::from_pairs(x.len(), [(0, 3), (1, 5)]),
    };
    assert!(check_all(&x, &acyclic).is_empty());
    assert!(no_thin_air_holds(&x, &acyclic));
}

/// Atomicity is scope-sensitive: a morally weak intervening write (too
/// narrow a scope) does not trip the axiom, mirroring the PTX behavior.
#[test]
fn atomicity_is_checked_on_rb_mo_composition() {
    let p = CProgram::new(
        vec![
            vec![fetch_add(MemOrder::Rlx, Scope::Sys, Register(0), X, 1)],
            vec![store(MemOrder::Rlx, Scope::Sys, X, 5)],
        ],
        SystemLayout::cta_per_thread(2),
    );
    let x = rc11::expand(&p);
    // events: 0=init 1=R_rmw 2=W_rmw 3=W5. Interpose W5 inside the RMW.
    let bad = CCandidate {
        rf_source: vec![0],
        mo: RelMat::from_pairs(x.len(), [(0, 3), (3, 2), (0, 2)]),
    };
    assert_eq!(check_all(&x, &bad), vec![CAxiom::Atomicity]);
}
