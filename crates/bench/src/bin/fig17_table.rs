//! One-off driver that prints Figure 17-style rows (also used to collect
//! data for EXPERIMENTS.md).
fn main() {
    let bounds: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let bounds = if bounds.is_empty() { vec![2, 3, 4] } else { bounds };
    for mode in [mapping::ScopeMode::Scoped, mapping::ScopeMode::Descoped] {
        for &bound in &bounds {
            let start = std::time::Instant::now();
            let rows = mapping::verify_all(
                bound,
                mode,
                mapping::RecipeVariant::Correct,
                modelfinder::Options::check(),
            )
            .unwrap();
            for r in &rows {
                println!(
                    "{:?} bound={} {:<10} unsat={:?} vars={} clauses={} conflicts={} t={:?}",
                    mode,
                    bound,
                    r.axiom,
                    matches!(r.verdict, modelfinder::Verdict::Unsat),
                    r.report.sat_vars,
                    r.report.sat_clauses,
                    r.report.solver_stats.conflicts,
                    r.total_time
                );
            }
            println!("  total bound={bound}: {:?}", start.elapsed());
        }
    }
}
