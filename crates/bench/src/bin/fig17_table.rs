//! One-off driver that prints Figure 17-style rows (also used to collect
//! data for EXPERIMENTS.md).
//!
//! ```text
//! fig17_table [bounds…] [--jobs N] [--timeout-secs S] [--json]
//! ```
//!
//! Each (scope mode × bound × axiom) verification is one query. With
//! `--jobs N` the queries fan out over a worker pool; `--timeout-secs S`
//! bounds each query's wall clock via the solver's cooperative deadline
//! (an overrunning query is reported as `Unknown`, never hangs the
//! sweep); `--json` emits one JSON Lines record per query.

use std::process::ExitCode;
use std::time::Duration;

use mapping::{RecipeVariant, ScopeMode};
use modelfinder::harness::{run_queries, HarnessOptions, Query, QueryOutput};
use modelfinder::{Options, Verdict};

const AXIOMS: [&str; 3] = ["Coherence", "Atomicity", "SC"];

fn main() -> ExitCode {
    let mut bounds: Vec<usize> = Vec::new();
    let mut jobs = 1usize;
    let mut timeout_secs: Option<u64> = None;
    let mut json = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return usage("--jobs needs a positive integer"),
            },
            "--timeout-secs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => timeout_secs = Some(s),
                None => return usage("--timeout-secs needs an integer"),
            },
            other => match other.parse() {
                Ok(b) => bounds.push(b),
                Err(_) => return usage(&format!("unrecognized argument `{other}`")),
            },
        }
    }
    let bounds = if bounds.is_empty() { vec![2, 3, 4] } else { bounds };

    let timeout = timeout_secs.map(Duration::from_secs);
    let mut queries = Vec::new();
    for mode in [ScopeMode::Scoped, ScopeMode::Descoped] {
        for &bound in &bounds {
            for axiom in AXIOMS {
                let name = format!("{mode:?}/bound{bound}/{axiom}");
                queries.push(Query::new(name, move |ctx| {
                    let model = mapping::build(bound, mode, RecipeVariant::Correct);
                    let mut opts = Options::check().with_cancel(ctx.cancel.clone());
                    opts.deadline = ctx.timeout;
                    let row = mapping::verify_axiom(&model, axiom, mode, opts)
                        .expect("internal encoding error");
                    QueryOutput {
                        verdict: match row.verdict {
                            Verdict::Sat(_) => "Sat".to_string(),
                            Verdict::Unsat => "Unsat".to_string(),
                            Verdict::Unknown => "Unknown".to_string(),
                        },
                        sat_vars: row.report.sat_vars as u64,
                        sat_clauses: row.report.sat_clauses as u64,
                        conflicts: row.report.solver_stats.conflicts,
                        detail: row
                            .report
                            .interrupted
                            .map(|reason| format!("stopped early: {reason}")),
                    }
                }));
            }
        }
    }

    let options = HarnessOptions {
        jobs,
        timeout,
        ..HarnessOptions::default()
    };
    let records = run_queries(queries, &options, |rec| {
        if json {
            println!("{}", rec.to_json());
        } else {
            println!(
                "{:<28} unsat={:<5} vars={} clauses={} conflicts={} t={:.3}s{}",
                rec.name,
                rec.verdict == "Unsat",
                rec.sat_vars,
                rec.sat_clauses,
                rec.conflicts,
                rec.wall.as_secs_f64(),
                if rec.timed_out { "  TIMEOUT" } else { "" },
            );
        }
    });
    let unknown = records.iter().filter(|r| r.verdict == "Unknown").count();
    if !json && unknown > 0 {
        eprintln!("{unknown} quer(ies) did not finish within budget");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("fig17_table: {err}");
    eprintln!("usage: fig17_table [bounds…] [--jobs N] [--timeout-secs S] [--json]");
    ExitCode::FAILURE
}
