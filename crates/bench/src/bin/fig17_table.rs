//! One-off driver that prints Figure 17-style rows (also used to collect
//! data for EXPERIMENTS.md).
//!
//! ```text
//! fig17_table [bounds…] [--jobs N] [--timeout-secs S] [--json]
//!             [--sessions] [--bench-json PATH] [--stats] [--stats-json PATH]
//!             [--trace-out PATH]
//! ```
//!
//! Each (scope mode × bound × axiom) verification is one query. With
//! `--jobs N` the queries fan out over a worker pool; `--timeout-secs S`
//! bounds each query's wall clock via the solver's cooperative deadline
//! (an overrunning query is reported as `Unknown`, never hangs the
//! sweep); `--json` emits one JSON Lines record per query.
//!
//! `--sessions` answers the queries through incremental
//! [`mapping::AxiomSession`]s pooled per (mode, bound): the combined
//! model's hypotheses are translated and encoded once per session, each
//! axiom only adds its negated goal, and learnt clauses persist between
//! axioms. Verdicts are identical to the scratch path; records gain a
//! detail field with the translation-cache hits and per-phase timings.
//!
//! `--bench-json PATH` times the scratch and session paths against each
//! other per bound and writes the comparison as a JSON Lines artifact in
//! the shared `obs` stats schema (the `BENCH_fig17.json` baseline in the
//! repository root): wall times under `time.bound<B>.{scratch,sessions}`
//! and the merged solver/translation counters of each path under
//! `bound<B>.{scratch,sessions}.`, so two baselines can be compared with
//! `scripts/bench_diff.sh`.
//!
//! `--stats` prints an observability table after the sweep — totals plus
//! per-query counters under `query.<name>.`; `--stats-json PATH` writes
//! the same snapshot as JSON Lines.
//!
//! `--trace-out PATH` writes the sweep's event timeline as Chrome
//! trace-event JSON (translate/encode/solve spans per query, worker-
//! tagged), loadable in Perfetto; summarize offline with `traceview`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mapping::{AxiomSession, RecipeVariant, ScopeMode};
use modelfinder::harness::{run_queries, HarnessOptions, Query, QueryOutput};
use modelfinder::{obs, Options, QueryRecord, SessionPool, Verdict};

const AXIOMS: [&str; 3] = ["Coherence", "Atomicity", "SC"];

fn main() -> ExitCode {
    let mut bounds: Vec<usize> = Vec::new();
    let mut jobs = 1usize;
    let mut timeout_secs: Option<u64> = None;
    let mut json = false;
    let mut sessions = false;
    let mut bench_json: Option<String> = None;
    let mut stats = false;
    let mut stats_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--sessions" => sessions = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return usage("--jobs needs a positive integer"),
            },
            "--timeout-secs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => timeout_secs = Some(s),
                None => return usage("--timeout-secs needs an integer"),
            },
            "--bench-json" => match it.next() {
                Some(path) => bench_json = Some(path.clone()),
                None => return usage("--bench-json needs a file path"),
            },
            "--stats" => stats = true,
            "--stats-json" => match it.next() {
                Some(path) => stats_json = Some(path.clone()),
                None => return usage("--stats-json needs a file path"),
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path.clone()),
                None => return usage("--trace-out needs a file path"),
            },
            other => match other.parse() {
                Ok(b) => bounds.push(b),
                Err(_) => return usage(&format!("unrecognized argument `{other}`")),
            },
        }
    }
    let bounds = if bounds.is_empty() {
        vec![2, 3, 4]
    } else {
        bounds
    };
    let timeout = timeout_secs.map(Duration::from_secs);

    if let Some(path) = bench_json {
        return run_bench(&bounds, jobs, timeout, &path);
    }

    let stats_wanted = stats || stats_json.is_some();
    let reg = if stats_wanted {
        obs::Registry::new()
    } else {
        obs::Registry::disabled()
    };
    let tracer = if trace_out.is_some() {
        obs::trace::Tracer::for_export()
    } else {
        obs::trace::Tracer::flight_recorder()
    };
    let records = run_sweep(&bounds, jobs, timeout, sessions, &reg, &tracer, |rec| {
        reg.merge_prefixed(&rec.obs, &format!("query.{}.", rec.name));
        if json {
            println!("{}", rec.to_json());
        } else {
            println!(
                "{:<28} unsat={:<5} vars={} clauses={} conflicts={} t={:.3}s{}",
                rec.name,
                rec.verdict == "Unsat",
                rec.sat_vars,
                rec.sat_clauses,
                rec.conflicts,
                rec.wall.as_secs_f64(),
                if rec.timed_out { "  TIMEOUT" } else { "" },
            );
        }
    });
    let unknown = records.iter().filter(|r| r.verdict == "Unknown").count();
    if !json && unknown > 0 {
        eprintln!("{unknown} quer(ies) did not finish within budget");
    }
    if stats_wanted {
        let snap = reg.snapshot();
        if let Some(path) = &stats_json {
            if let Err(e) = std::fs::write(path, snap.to_jsonl()) {
                eprintln!("fig17_table: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if stats {
            print!("{}", snap.render_table());
        }
    }
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, tracer.snapshot().to_chrome_json()) {
            eprintln!("fig17_table: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Runs the full (mode × bound × axiom) sweep on either the scratch or
/// the incremental path, streaming records to `on_record`.
fn run_sweep(
    bounds: &[usize],
    jobs: usize,
    timeout: Option<Duration>,
    sessions: bool,
    reg: &obs::Registry,
    tracer: &obs::trace::Tracer,
    on_record: impl FnMut(&QueryRecord),
) -> Vec<QueryRecord> {
    // One incremental session per (mode, bound) key and worker; workers
    // check sessions out per query, so at most `jobs` exist per key.
    let pool: Arc<SessionPool<(ScopeMode, usize), AxiomSession>> = Arc::new(SessionPool::new());
    let mut queries = Vec::new();
    for mode in [ScopeMode::Scoped, ScopeMode::Descoped] {
        for &bound in bounds {
            for axiom in AXIOMS {
                let name = format!("{mode:?}/bound{bound}/{axiom}");
                let pool = Arc::clone(&pool);
                queries.push(Query::new(name, move |ctx| {
                    if sessions {
                        let mut session = pool.checkout(&(mode, bound), || {
                            AxiomSession::new(bound, mode, RecipeVariant::Correct, Options::check())
                                .expect("internal encoding error")
                        });
                        session.set_cancel(Some(ctx.cancel.clone()));
                        session.set_deadline(ctx.timeout);
                        session.set_tracer(ctx.trace.clone());
                        let row = session.verify(axiom).expect("internal encoding error");
                        session.set_cancel(None);
                        session.set_deadline(None);
                        row.report.record_obs(&ctx.obs);
                        let out = query_output(&row, true);
                        pool.checkin((mode, bound), session);
                        out
                    } else {
                        let model = mapping::build(bound, mode, RecipeVariant::Correct);
                        let mut opts = Options::check()
                            .with_cancel(ctx.cancel.clone())
                            .with_tracer(ctx.trace.clone());
                        opts.deadline = ctx.timeout;
                        let row = mapping::verify_axiom(&model, axiom, mode, opts)
                            .expect("internal encoding error");
                        row.report.record_obs(&ctx.obs);
                        query_output(&row, false)
                    }
                }));
            }
        }
    }
    let options = HarnessOptions {
        jobs,
        timeout,
        obs: reg.clone(),
        trace: tracer.clone(),
        ..HarnessOptions::default()
    };
    run_queries(queries, &options, on_record)
}

/// Converts a verification row into a harness record payload. Session
/// rows carry the incremental counters in the detail field.
fn query_output(row: &mapping::AxiomCheckRow, sessions: bool) -> QueryOutput {
    let mut detail = row
        .report
        .interrupted
        .map(|reason| format!("stopped early: {reason}"));
    if sessions {
        let phases = format!(
            "cache_hits={} t_translate={:.6}s t_solve={:.6}s",
            row.report.gate_cache_hits,
            row.report.translate_time.as_secs_f64(),
            row.report.solve_time.as_secs_f64(),
        );
        detail = Some(match detail {
            Some(d) => format!("{d}; {phases}"),
            None => phases,
        });
    }
    QueryOutput {
        verdict: match &row.verdict {
            Verdict::Sat(_) => "Sat".to_string(),
            Verdict::Unsat => "Unsat".to_string(),
            Verdict::Unknown => "Unknown".to_string(),
        },
        sat_vars: row.report.sat_vars as u64,
        sat_clauses: row.report.sat_clauses as u64,
        conflicts: row.report.solver_stats.conflicts,
        path: None,
        detail,
    }
}

/// Times the scratch path against the session path per bound and writes
/// the comparison to `path` as an `obs` JSON Lines snapshot: wall times
/// as `time.bound<B>.{scratch,sessions}` and each path's merged work
/// counters under `bound<B>.{scratch,sessions}.`.
fn run_bench(bounds: &[usize], jobs: usize, timeout: Option<Duration>, path: &str) -> ExitCode {
    let reg = obs::Registry::new();
    reg.note("benchmark", "fig17 scratch vs incremental sessions");
    reg.note("jobs", &jobs.to_string());
    reg.note("queries_per_bound", &(2 * AXIOMS.len()).to_string());
    for &bound in bounds {
        let single = [bound];
        let tracer = obs::trace::Tracer::flight_recorder();
        let scratch_obs = obs::Registry::new();
        let t0 = Instant::now();
        let scratch_records =
            run_sweep(&single, jobs, timeout, false, &scratch_obs, &tracer, |_| {});
        let scratch_wall = t0.elapsed();
        let session_obs = obs::Registry::new();
        let t1 = Instant::now();
        let session_records =
            run_sweep(&single, jobs, timeout, true, &session_obs, &tracer, |_| {});
        let session_wall = t1.elapsed();
        for (s, i) in scratch_records.iter().zip(&session_records) {
            if s.verdict != i.verdict {
                eprintln!(
                    "fig17_table: verdict drift on {}: scratch={} sessions={}",
                    s.name, s.verdict, i.verdict
                );
                return ExitCode::FAILURE;
            }
        }
        let (scratch_secs, session_secs) = (scratch_wall.as_secs_f64(), session_wall.as_secs_f64());
        eprintln!(
            "bound {bound}: scratch {scratch_secs:.3}s, sessions {session_secs:.3}s ({:.2}x)",
            scratch_secs / session_secs
        );
        reg.record_duration(&format!("time.bound{bound}.scratch"), scratch_wall);
        reg.record_duration(&format!("time.bound{bound}.sessions"), session_wall);
        reg.merge_prefixed(&scratch_obs, &format!("bound{bound}.scratch."));
        reg.merge_prefixed(&session_obs, &format!("bound{bound}.sessions."));
    }

    match std::fs::write(path, reg.snapshot().to_jsonl()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig17_table: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("fig17_table: {err}");
    eprintln!(
        "usage: fig17_table [bounds…] [--jobs N] [--timeout-secs S] [--json] \
         [--sessions] [--bench-json PATH] [--stats] [--stats-json PATH] \
         [--trace-out PATH]"
    );
    ExitCode::FAILURE
}
