//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures (see `benches/` and the `fig17_table` binary).

use satsolver::{Lit, Solver, Var};
use testkit::Rng;

/// Builds a pigeonhole CNF: `pigeons` into `holes` (UNSAT when
/// `pigeons > holes`).
pub fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let var: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &var {
        let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&clause);
    }
    for p1 in 0..pigeons {
        for p2 in (p1 + 1)..pigeons {
            for (a, b) in var[p1].iter().zip(&var[p2]) {
                s.add_clause(&[a.negative(), b.negative()]);
            }
        }
    }
    s
}

/// Builds a random 3-SAT instance with the given clause/variable ratio.
pub fn random_3sat(num_vars: usize, ratio: f64, seed: u64) -> Solver {
    let mut rng = Rng::seed(seed);
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
    let num_clauses = (num_vars as f64 * ratio) as usize;
    for _ in 0..num_clauses {
        let mut clause = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = vars[rng.index(num_vars)];
            let lit = Lit::new(v, rng.flip());
            if !clause.contains(&lit) && !clause.contains(&!lit) {
                clause.push(lit);
            }
        }
        s.add_clause(&clause);
    }
    s
}

/// Runs one Figure 17 verification row and returns (verdict-is-unsat,
/// wall time).
pub fn fig17_row(
    bound: usize,
    mode: mapping::ScopeMode,
    axiom: &'static str,
) -> (bool, std::time::Duration) {
    let model = mapping::build(bound, mode, mapping::RecipeVariant::Correct);
    let row = mapping::verify_axiom(&model, axiom, mode, modelfinder::Options::check())
        .expect("well-typed encoding");
    (row.verdict.is_unsat(), row.total_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satsolver::SolveResult;

    #[test]
    fn pigeonhole_helper() {
        assert_eq!(pigeonhole(5, 4).solve(), SolveResult::Unsat);
        assert_eq!(pigeonhole(4, 4).solve(), SolveResult::Sat);
    }

    #[test]
    fn random_3sat_is_deterministic() {
        let mut a = random_3sat(30, 3.0, 42);
        let mut b = random_3sat(30, 3.0, 42);
        assert_eq!(a.solve(), b.solve());
    }
}
