//! Figure 17a: runtime to empirically verify the scoped C++ → PTX mapping
//! per RC11 axiom, with the full scope hierarchy, as a function of the
//! event bound.
//!
//! The paper reports (Intel Xeon, Alloy + MiniSat-class solver):
//! Coherence 41 s at bound 4 and 6.4 h at bound 5; Atomicity 4–5 s;
//! SC 10 s / 15 min. The absolute numbers differ on our stack, but the
//! orderings (Coherence ≈ SC ≫ Atomicity) and the superexponential growth
//! per bound reproduce. Criterion sweeps bounds 2–3; run
//! `cargo run --release -p ptxmm-bench --bin fig17_table -- 4 5` for the
//! long-bound rows reported in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptxmm_bench::fig17_row;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_scoped");
    group.sample_size(10);
    for bound in [2usize, 3] {
        for axiom in ["Coherence", "Atomicity", "SC"] {
            group.bench_with_input(BenchmarkId::new(axiom, bound), &bound, |b, &bound| {
                b.iter(|| {
                    let (unsat, _) = fig17_row(bound, mapping::ScopeMode::Scoped, axiom);
                    assert!(unsat, "{axiom} bound {bound}: counterexample found");
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
