//! Figure 17a: runtime to empirically verify the scoped C++ → PTX mapping
//! per RC11 axiom, with the full scope hierarchy, as a function of the
//! event bound.
//!
//! The paper reports (Intel Xeon, Alloy + MiniSat-class solver):
//! Coherence 41 s at bound 4 and 6.4 h at bound 5; Atomicity 4–5 s;
//! SC 10 s / 15 min. The absolute numbers differ on our stack, but the
//! orderings (Coherence ≈ SC ≫ Atomicity) and the superexponential growth
//! per bound reproduce. This bench sweeps bounds 2–3; run
//! `cargo run --release -p ptxmm-bench --bin fig17_table -- 4 5` for the
//! long-bound rows reported in EXPERIMENTS.md.

use ptxmm_bench::fig17_row;
use testkit::bench::Group;

fn main() {
    let mut group = Group::new("fig17_scoped");
    group.sample_size(10);
    for bound in [2usize, 3] {
        for axiom in ["Coherence", "Atomicity", "SC"] {
            group.bench(&format!("{axiom}/{bound}"), || {
                let (unsat, _) = fig17_row(bound, mapping::ScopeMode::Scoped, axiom);
                assert!(unsat, "{axiom} bound {bound}: counterexample found");
            });
        }
    }
}
