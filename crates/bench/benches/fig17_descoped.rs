//! Figure 17b: the "de-scoped" comparison — the same per-axiom mapping
//! verification with every event forced to `.sys` scope. The paper uses
//! this to quantify the analysis cost of scopes (roughly an order of
//! magnitude at its bounds); our encoding shows the same direction with a
//! smaller gap at small bounds (the scope tree is fixed, so scopes add
//! per-event choice but no extra atoms).

use ptxmm_bench::fig17_row;
use testkit::bench::Group;

fn main() {
    let mut group = Group::new("fig17_descoped");
    group.sample_size(10);
    for bound in [2usize, 3] {
        for axiom in ["Coherence", "Atomicity", "SC"] {
            group.bench(&format!("{axiom}/{bound}"), || {
                let (unsat, _) = fig17_row(bound, mapping::ScopeMode::Descoped, axiom);
                assert!(unsat, "{axiom} bound {bound}: counterexample found");
            });
        }
    }
}
