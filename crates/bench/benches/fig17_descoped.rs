//! Figure 17b: the "de-scoped" comparison — the same per-axiom mapping
//! verification with every event forced to `.sys` scope. The paper uses
//! this to quantify the analysis cost of scopes (roughly an order of
//! magnitude at its bounds); our encoding shows the same direction with a
//! smaller gap at small bounds (the scope tree is fixed, so scopes add
//! per-event choice but no extra atoms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptxmm_bench::fig17_row;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_descoped");
    group.sample_size(10);
    for bound in [2usize, 3] {
        for axiom in ["Coherence", "Atomicity", "SC"] {
            group.bench_with_input(BenchmarkId::new(axiom, bound), &bound, |b, &bound| {
                b.iter(|| {
                    let (unsat, _) = fig17_row(bound, mapping::ScopeMode::Descoped, axiom);
                    assert!(unsat, "{axiom} bound {bound}: counterexample found");
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
