//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * transitive-closure encoding: iterative squaring vs linear unrolling;
//! * lex-leader symmetry breaking: on vs off;
//! * evaluation engine: full enumeration vs the axiom-check inner loop.

use litmus::library;
use modelfinder::{ClosureStrategy, ModelFinder, Options, Problem};
use relational::patterns;
use relational::schema::rel;
use relational::{Bounds, Schema};
use testkit::bench::Group;

/// A closure-heavy model-finding problem over a 6-atom universe.
fn closure_problem() -> Problem {
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, 6);
    let r3 = rel(r)
        .union(&rel(r).join(&rel(r)))
        .union(&rel(r).join(&rel(r)).join(&rel(r)));
    let formula = relational::Formula::and_all([
        patterns::acyclic(&rel(r)),
        rel(r).some(),
        rel(r).closure().in_(&r3),
    ]);
    Problem {
        schema,
        bounds,
        formula,
    }
}

fn bench_closure() {
    let mut group = Group::new("ablation_closure");
    group.sample_size(10);
    let problem = closure_problem();
    for (name, strategy) in [
        ("iterative_squaring", ClosureStrategy::IterativeSquaring),
        ("unrolled", ClosureStrategy::Unrolled),
    ] {
        group.bench(name, || {
            let opts = Options {
                closure: strategy,
                ..Options::default()
            };
            let _ = ModelFinder::new(opts).solve(&problem).unwrap();
        });
    }
}

fn bench_symmetry() {
    let mut group = Group::new("ablation_symmetry");
    group.sample_size(10);
    // The Figure 17 Coherence check at bound 2 with and without
    // lex-leader symmetry breaking.
    for (name, sym) in [("on", true), ("off", false)] {
        group.bench(name, || {
            let model = mapping::build(
                2,
                mapping::ScopeMode::Scoped,
                mapping::RecipeVariant::Correct,
            );
            let opts = Options {
                symmetry_breaking: sym,
                ..Options::default()
            };
            let row = mapping::verify_axiom(&model, "Coherence", mapping::ScopeMode::Scoped, opts)
                .unwrap();
            assert!(row.verdict.is_unsat());
        });
    }
}

fn bench_engines() {
    let mut group = Group::new("ablation_engine");
    group.sample_size(20);
    // Enumeration engine on the MP figure.
    let mp = library::mp();
    group.bench("bitmatrix_enumeration", || {
        let e = ptx::enumerate_executions(&mp.program);
        assert!(!e.executions.is_empty());
    });
    // Candidate checking via derived-relation computation only (the
    // axiom-check inner loop).
    let expansion = ptx::expand(&mp.program);
    let co = memmodel::RelMat::from_pairs(expansion.len(), ptx::exec::init_co_edges(&expansion));
    let candidate = ptx::Candidate {
        rf_source: vec![3, 2],
        co,
        sc: memmodel::RelMat::new(expansion.len()),
    };
    group.bench("axiom_check_inner_loop", || {
        let check = ptx::check_all(&expansion, &mp.program.layout, &candidate);
        assert!(check.is_consistent());
    });
}

fn main() {
    bench_closure();
    bench_symmetry();
    bench_engines();
}
