//! The CDCL solver on standard hard families: pigeonhole (UNSAT, forces
//! deep conflict analysis) and random 3-SAT near the phase transition
//! (clause/var ≈ 4.26). This is the substrate every Figure 17 row rests
//! on.

use ptxmm_bench::{pigeonhole, random_3sat};
use satsolver::SolveResult;
use testkit::bench::Group;

fn main() {
    let mut group = Group::new("sat_solver");
    group.sample_size(10);
    for n in [6usize, 7, 8] {
        group.bench(&format!("pigeonhole/{n}"), || {
            let mut s = pigeonhole(n + 1, n);
            assert_eq!(s.solve(), SolveResult::Unsat);
        });
    }
    for n in [60usize, 100, 140] {
        group.bench(&format!("random3sat_4.26/{n}"), || {
            let mut s = random_3sat(n, 4.26, n as u64);
            let _ = s.solve();
        });
    }
}
