//! Exhaustive-enumeration cost of each litmus-test figure from the paper
//! (Figures 5, 6, 8, 9) plus the heavier classic shapes — the herd-style
//! workload of the infrastructure.

use criterion::{criterion_group, criterion_main, Criterion};
use litmus::{library, run_ptx};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("litmus_suite");
    for test in library::paper_suite() {
        group.bench_function(&test.name, |b| {
            b.iter(|| {
                let r = run_ptx(&test);
                assert!(r.passed, "{} regressed", test.name);
            })
        });
    }
    // The heavier four-thread tests.
    group.sample_size(10);
    for test in [library::iriw_acquire(), library::iriw_fence_sc()] {
        group.bench_function(&test.name, |b| {
            b.iter(|| {
                let r = run_ptx(&test);
                assert!(r.passed, "{} regressed", test.name);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
