//! Exhaustive-enumeration cost of each litmus-test figure from the paper
//! (Figures 5, 6, 8, 9) plus the heavier classic shapes — the herd-style
//! workload of the infrastructure.

use litmus::{library, run_ptx};
use testkit::bench::Group;

fn main() {
    let mut group = Group::new("litmus_suite");
    group.sample_size(20);
    for test in library::paper_suite() {
        group.bench(&test.name, || {
            let r = run_ptx(&test);
            assert!(r.passed, "{} regressed", test.name);
        });
    }
    // The heavier four-thread tests.
    group.sample_size(10);
    for test in [library::iriw_acquire(), library::iriw_fence_sc()] {
        group.bench(&test.name, || {
            let r = run_ptx(&test);
            assert!(r.passed, "{} regressed", test.name);
        });
    }
}
