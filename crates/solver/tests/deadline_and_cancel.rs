//! Deadline, budget, and cancellation behavior of the model finder: every
//! early-exit path must surface as `Verdict::Unknown` with the reason
//! recorded in the report — never a hang, never a bogus verdict.

use std::time::Duration;

use modelfinder::{CancelToken, Interrupt, ModelFinder, Options, Problem, Verdict};
use relational::schema::rel;
use relational::{patterns, Bounds, Schema};

fn simple_problem() -> Problem {
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, 3);
    let formula = patterns::acyclic(&rel(r)).and(&rel(r).some());
    Problem {
        schema,
        bounds,
        formula,
    }
}

#[test]
fn expired_deadline_is_unknown_with_reason() {
    let opts = Options::check().with_deadline(Duration::ZERO);
    let (verdict, report) = ModelFinder::new(opts).solve(&simple_problem()).unwrap();
    assert_eq!(verdict, Verdict::Unknown);
    assert_eq!(report.interrupted, Some(Interrupt::Deadline));
    // Translation still happened and is reported.
    assert!(report.sat_vars > 0);
}

#[test]
fn generous_deadline_does_not_change_verdict() {
    let problem = simple_problem();
    let (plain, _) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
    let opts = Options::check().with_deadline(Duration::from_secs(3600));
    let (timed, report) = ModelFinder::new(opts).solve(&problem).unwrap();
    assert_eq!(plain.instance().is_some(), timed.instance().is_some());
    assert_eq!(report.interrupted, None);
}

#[test]
fn pre_cancelled_token_is_unknown() {
    let token = CancelToken::new();
    token.cancel();
    let opts = Options::check().with_cancel(token);
    let (verdict, report) = ModelFinder::new(opts).solve(&simple_problem()).unwrap();
    assert_eq!(verdict, Verdict::Unknown);
    assert_eq!(report.interrupted, Some(Interrupt::Cancelled));
}

#[test]
fn uncancelled_token_is_harmless() {
    let token = CancelToken::new();
    let opts = Options::check().with_cancel(token.clone());
    let (verdict, report) = ModelFinder::new(opts).solve(&simple_problem()).unwrap();
    assert!(verdict.instance().is_some());
    assert_eq!(report.interrupted, None);
    assert!(!token.is_cancelled());
}

#[test]
fn zero_conflict_budget_reports_reason() {
    let opts = Options {
        conflict_budget: Some(0),
        ..Options::check()
    };
    let (verdict, report) = ModelFinder::new(opts).solve(&simple_problem()).unwrap();
    assert_eq!(verdict, Verdict::Unknown);
    assert_eq!(report.interrupted, Some(Interrupt::ConflictBudget));
}

#[test]
fn zero_propagation_budget_reports_reason() {
    let opts = Options {
        propagation_budget: Some(0),
        ..Options::check()
    };
    let (verdict, report) = ModelFinder::new(opts).solve(&simple_problem()).unwrap();
    assert_eq!(verdict, Verdict::Unknown);
    assert_eq!(report.interrupted, Some(Interrupt::PropagationBudget));
}
