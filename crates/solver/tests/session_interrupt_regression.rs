//! Regression: a budget-interrupted (Unknown) query must not damage a
//! session — the gate cache and the solver's learnt clauses survive, and
//! SAT/UNSAT queries interleaved around the interruption keep their
//! verdicts. Pins the cancellation invariant introduced with incremental
//! solving (the solver backtracks to level 0 on interruption instead of
//! poisoning its state).

use modelfinder::{drat, Options, Session, Verdict};
use relational::patterns;
use relational::schema::rel;
use relational::{Bounds, Formula, Schema};
use satsolver::Interrupt;
use std::time::Duration;

fn acyclic_session(options: Options) -> (Schema, Session) {
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, 3);
    let base = patterns::acyclic(&rel(r));
    let session = Session::new(&schema, &bounds, &base, options).unwrap();
    (schema, session)
}

#[test]
fn gate_cache_and_learnts_survive_budget_interruption() {
    let (schema, mut session) = acyclic_session(Options::default().with_proof_logging());
    let r = schema.find("r").unwrap();
    let mut checker = drat::Checker::new();
    let mut certify = |session: &Session, core_expected: bool| {
        checker
            .absorb(session.proof().unwrap())
            .expect("proof checks");
        if core_expected {
            let core = session.last_core().expect("unsat query records a core");
            checker.expect_core(core).expect("core certified");
        }
    };

    // Interleave SAT and UNSAT before the interruption. The UNSAT query
    // leaves learnt clauses behind; the SAT query warms the gate cache
    // for the r;r subcircuit.
    let unsat_query = rel(r).some().and(&rel(r).no());
    let sat_query = rel(r).join(&rel(r)).some();
    let (v, _) = session.solve(&unsat_query).unwrap();
    assert!(v.is_unsat());
    certify(&session, true);
    let (v, first_sat_report) = session.solve(&sat_query).unwrap();
    assert!(v.instance().is_some());
    certify(&session, false);

    let learnts_before = session.num_learnts();
    let queries_before = session.stats().queries;

    // A conflict-budget interruption: the query is cut off before any
    // conflict is spent and must answer Unknown without poisoning state.
    session.set_conflict_budget(Some(0));
    let (v, report) = session.solve(&sat_query).unwrap();
    assert_eq!(v, Verdict::Unknown);
    assert_eq!(report.interrupted, Some(Interrupt::ConflictBudget));
    certify(&session, false);

    // And a wall-clock interruption, which fires even earlier (before
    // the search starts at all).
    session.set_conflict_budget(None);
    session.set_deadline(Some(Duration::ZERO));
    let (v, report) = session.solve(&sat_query).unwrap();
    assert_eq!(v, Verdict::Unknown);
    assert_eq!(report.interrupted, Some(Interrupt::Deadline));
    certify(&session, false);
    session.set_deadline(None);

    // Learnt clauses survived both interruptions…
    assert!(
        session.num_learnts() >= learnts_before,
        "interrupted queries must not drop learnt clauses \
         ({} before, {} after)",
        learnts_before,
        session.num_learnts()
    );
    assert_eq!(session.stats().queries, queries_before + 2);

    // …and the gate cache did too: re-running the SAT query hits the
    // cache (at the root, so one hit suffices) and encodes no new gate
    // variables — the only vars added since the first SAT run are the
    // three per-query activation literals (two interrupted + this one).
    let (v, report) = session.solve(&sat_query).unwrap();
    assert!(
        v.instance().is_some(),
        "verdict unchanged after interruption"
    );
    certify(&session, false);
    assert!(
        report.gate_cache_hits > 0,
        "re-query must hit the gate cache"
    );
    assert_eq!(
        report.sat_vars,
        first_sat_report.sat_vars + 3,
        "interrupted queries must not re-encode the cached subcircuit"
    );

    // UNSAT still answered correctly, with a certified core.
    let (v, _) = session.solve(&unsat_query).unwrap();
    assert!(v.is_unsat());
    certify(&session, true);
    let (v, _) = session.solve(&rel(r).no()).unwrap();
    assert!(v.instance().is_some());
    certify(&session, false);
}

#[test]
fn pre_cancelled_token_does_not_poison_session() {
    let (schema, mut session) = acyclic_session(Options::default());
    let r = schema.find("r").unwrap();
    let (v, _) = session.solve(&rel(r).some()).unwrap();
    assert!(v.instance().is_some());

    let token = modelfinder::CancelToken::new();
    token.cancel();
    session.set_cancel(Some(token));
    let (v, report) = session.solve(&rel(r).some()).unwrap();
    assert_eq!(v, Verdict::Unknown);
    assert_eq!(report.interrupted, Some(Interrupt::Cancelled));

    session.set_cancel(None);
    // Verdicts on both sides of the cancellation still correct.
    let (v, _) = session.solve(&rel(r).some().and(&rel(r).no())).unwrap();
    assert!(v.is_unsat());
    assert_eq!(session.last_core().map(<[_]>::len), Some(1));
    let (v, _) = session.solve(&rel(r).some()).unwrap();
    assert!(v.instance().is_some());
    assert!(session.last_core().is_none());
}

/// The empty universe of `Formula::False` as base: every query is Unsat
/// with an *empty* core once the base refutes itself — the degenerate
/// core shape `fuzzherd` also exercises.
#[test]
fn base_level_unsat_reports_empty_core() {
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, 2);
    let mut session = Session::new(
        &schema,
        &bounds,
        &Formula::False,
        Options::default().with_proof_logging(),
    )
    .unwrap();
    let (v, _) = session.solve(&rel(r).some()).unwrap();
    assert!(v.is_unsat());
    let core = session.last_core().expect("unsat");
    let mut checker = drat::Checker::new();
    checker
        .absorb(session.proof().unwrap())
        .expect("proof checks");
    checker.expect_core(core).expect("core certified");
}
