//! Symmetry breaking must preserve satisfiability (never verdicts) while
//! genuinely pruning models: for problems with interchangeable atoms, the
//! lex-leader-constrained model count is strictly smaller than the full
//! count but nonzero whenever the full count is nonzero.

use modelfinder::{ModelFinder, Options, Problem, Session};
use relational::patterns;
use relational::schema::rel;
use relational::{Bounds, Expr, Formula, Schema, TupleSet};

/// Counts all models via `enumerate` (which always disables symmetry
/// breaking, keeping the count exact).
fn count_models(problem: &Problem) -> usize {
    ModelFinder::new(Options::default())
        .enumerate(problem, 10_000, |_| {})
        .unwrap()
}

#[test]
fn verdicts_agree_across_structured_problems() {
    // A family of problems over one binary relation with varying
    // constraints; symmetry breaking must never flip SAT/UNSAT.
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, 4);
    let formulas: Vec<(&str, Formula)> = vec![
        (
            "acyclic+some",
            patterns::acyclic(&rel(r)).and(&rel(r).some()),
        ),
        ("total-order", {
            let univ = relational::Expr::Univ;
            patterns::strict_total_order_on(&rel(r), &univ)
        }),
        ("symmetric+irreflexive", {
            patterns::symmetric(&rel(r))
                .and(&patterns::irreflexive(&rel(r)))
                .and(&rel(r).some())
        }),
        ("impossible", {
            // r non-empty, transitive, irreflexive, and r ; r = r with
            // r ⊆ iden — contradiction.
            rel(r)
                .some()
                .and(&rel(r).in_(&relational::Expr::Iden))
                .and(&patterns::irreflexive(&rel(r)))
        }),
    ];
    for (name, formula) in formulas {
        let problem = Problem {
            schema: schema.clone(),
            bounds: bounds.clone(),
            formula,
        };
        let (plain, _) = ModelFinder::new(Options::default())
            .solve(&problem)
            .unwrap();
        let (broken, _) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
        assert_eq!(
            plain.instance().is_some(),
            broken.instance().is_some(),
            "symmetry breaking changed the verdict for {name}"
        );
    }
}

#[test]
fn lex_leader_prunes_but_keeps_witnesses() {
    // Over 3 fully interchangeable atoms, a strict total order has 6
    // models; symmetry breaking must keep at least one and the verdict
    // SAT. (Model counting under symmetry is not part of the public API;
    // we check pruning indirectly through solver statistics: the broken
    // problem carries extra clauses.)
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, 3);
    let formula = patterns::strict_total_order_on(&rel(r), &relational::Expr::Univ);
    let problem = Problem {
        schema,
        bounds,
        formula,
    };
    assert_eq!(count_models(&problem), 6, "3! total orders");
    let (verdict, report) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
    assert!(verdict.instance().is_some());
    assert_eq!(report.symmetry_classes, 1);
    let (_, plain_report) = ModelFinder::new(Options::default())
        .solve(&problem)
        .unwrap();
    assert!(
        report.sat_clauses > plain_report.sat_clauses,
        "lex-leader constraints must add clauses"
    );
}

/// A problem whose formula pins atom 0 by identity: `r = {atom 0}` over a
/// fully free unary relation. Atoms 0..2 are interchangeable by *bounds*,
/// so naive lex-leader breaking would force the lex-minimal orbit
/// representative (`r = {atom 2}` under our ordering) and wrongly report
/// Unsat. The guard must detect the pin and downgrade instead.
fn pinning_problem() -> Problem {
    let mut schema = Schema::new();
    let r = schema.relation("r", 1);
    let bounds = Bounds::new(&schema, 3);
    let formula = rel(r).equal(&Expr::constant(TupleSet::from_atoms([0])));
    Problem {
        schema,
        bounds,
        formula,
    }
}

#[test]
fn pinning_formula_downgrades_symmetry_and_stays_sat() {
    let problem = pinning_problem();
    let (verdict, report) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
    assert!(
        verdict.instance().is_some(),
        "r = {{atom 0}} is satisfiable; lex-leader predicates must not be applied"
    );
    assert!(
        report.symmetry_downgraded,
        "guard must record the downgrade"
    );
    assert_eq!(report.symmetry_classes, 0, "no predicates were emitted");
    // A permutation-invariant problem on the same options keeps symmetry
    // breaking active and does not report a downgrade.
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let clean = Problem {
        bounds: Bounds::new(&schema, 3),
        formula: patterns::acyclic(&rel(r)).and(&rel(r).some()),
        schema,
    };
    let (_, clean_report) = ModelFinder::new(Options::check()).solve(&clean).unwrap();
    assert!(!clean_report.symmetry_downgraded);
    assert!(clean_report.symmetry_classes > 0);
}

#[test]
fn session_with_pinning_base_downgrades_and_still_enumerates() {
    let problem = pinning_problem();
    let mut session = Session::new(
        &problem.schema,
        &problem.bounds,
        &problem.formula,
        Options::check(),
    )
    .unwrap();
    let (verdict, report) = session.solve(&Formula::True).unwrap();
    assert!(verdict.instance().is_some());
    assert!(report.symmetry_downgraded);
    // The downgrade clears the asserted predicates, so enumeration (which
    // a symmetry-active session must refuse) is permitted again and exact.
    let n = session.enumerate(&Formula::True, 10, |_| {}).unwrap();
    assert_eq!(n, 1, "exactly one model: r = {{atom 0}}");
}

#[test]
#[should_panic(expected = "unsound")]
fn pinning_query_on_symmetry_session_panics() {
    // The base is permutation-invariant, so Session::new legitimately
    // asserts lex-leader predicates. A later query that pins atoms cannot
    // be answered soundly against them — and they cannot be retracted —
    // so Session::solve must refuse loudly rather than misjudge.
    let mut schema = Schema::new();
    let r = schema.relation("r", 1);
    let bounds = Bounds::new(&schema, 3);
    let mut session = Session::new(&schema, &bounds, &Formula::True, Options::check()).unwrap();
    let pinned = rel(r).equal(&Expr::constant(TupleSet::from_atoms([0])));
    let _ = session.solve(&pinned);
}
