//! Symmetry breaking must preserve satisfiability (never verdicts) while
//! genuinely pruning models: for problems with interchangeable atoms, the
//! lex-leader-constrained model count is strictly smaller than the full
//! count but nonzero whenever the full count is nonzero.

use modelfinder::{ModelFinder, Options, Problem};
use relational::patterns;
use relational::schema::rel;
use relational::{Bounds, Formula, Schema};

/// Counts all models via `enumerate` (which always disables symmetry
/// breaking, keeping the count exact).
fn count_models(problem: &Problem) -> usize {
    ModelFinder::new(Options::default())
        .enumerate(problem, 10_000, |_| {})
        .unwrap()
}

#[test]
fn verdicts_agree_across_structured_problems() {
    // A family of problems over one binary relation with varying
    // constraints; symmetry breaking must never flip SAT/UNSAT.
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, 4);
    let formulas: Vec<(&str, Formula)> = vec![
        (
            "acyclic+some",
            patterns::acyclic(&rel(r)).and(&rel(r).some()),
        ),
        ("total-order", {
            let univ = relational::Expr::Univ;
            patterns::strict_total_order_on(&rel(r), &univ)
        }),
        ("symmetric+irreflexive", {
            patterns::symmetric(&rel(r))
                .and(&patterns::irreflexive(&rel(r)))
                .and(&rel(r).some())
        }),
        ("impossible", {
            // r non-empty, transitive, irreflexive, and r ; r = r with
            // r ⊆ iden — contradiction.
            rel(r)
                .some()
                .and(&rel(r).in_(&relational::Expr::Iden))
                .and(&patterns::irreflexive(&rel(r)))
        }),
    ];
    for (name, formula) in formulas {
        let problem = Problem {
            schema: schema.clone(),
            bounds: bounds.clone(),
            formula,
        };
        let (plain, _) = ModelFinder::new(Options::default())
            .solve(&problem)
            .unwrap();
        let (broken, _) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
        assert_eq!(
            plain.instance().is_some(),
            broken.instance().is_some(),
            "symmetry breaking changed the verdict for {name}"
        );
    }
}

#[test]
fn lex_leader_prunes_but_keeps_witnesses() {
    // Over 3 fully interchangeable atoms, a strict total order has 6
    // models; symmetry breaking must keep at least one and the verdict
    // SAT. (Model counting under symmetry is not part of the public API;
    // we check pruning indirectly through solver statistics: the broken
    // problem carries extra clauses.)
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, 3);
    let formula = patterns::strict_total_order_on(&rel(r), &relational::Expr::Univ);
    let problem = Problem {
        schema,
        bounds,
        formula,
    };
    assert_eq!(count_models(&problem), 6, "3! total orders");
    let (verdict, report) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
    assert!(verdict.instance().is_some());
    assert_eq!(report.symmetry_classes, 1);
    let (_, plain_report) = ModelFinder::new(Options::default())
        .solve(&problem)
        .unwrap();
    assert!(
        report.sat_clauses > plain_report.sat_clauses,
        "lex-leader constraints must add clauses"
    );
}
