//! Differential testing: the SAT-based model finder against the ground
//! evaluator and exhaustive instance enumeration.

use modelfinder::{ClosureStrategy, ModelFinder, Options, Problem};
use proptest::prelude::*;
use relational::schema::rel;
use relational::{eval_formula, patterns, Bounds, Expr, Formula, Instance, Schema, TupleSet};

/// A small random formula over one binary relation `r` and one unary set
/// `s`.
fn arb_formula() -> impl Strategy<Value = FormulaSpec> {
    let leaf = prop_oneof![
        Just(ExprSpec::R),
        Just(ExprSpec::S),
        Just(ExprSpec::Iden),
        Just(ExprSpec::RTrans),
        Just(ExprSpec::RJoinR),
        Just(ExprSpec::RClos),
        Just(ExprSpec::SProdS),
    ];
    (leaf.clone(), leaf, 0u8..6).prop_map(|(a, b, op)| FormulaSpec { a, b, op })
}

#[derive(Debug, Clone, Copy)]
enum ExprSpec {
    R,
    S,
    Iden,
    RTrans,
    RJoinR,
    RClos,
    SProdS,
}

#[derive(Debug, Clone, Copy)]
struct FormulaSpec {
    a: ExprSpec,
    b: ExprSpec,
    op: u8,
}

struct Ctx {
    schema: Schema,
    r: relational::RelId,
    s: relational::RelId,
}

fn ctx() -> Ctx {
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let s = schema.relation("s", 1);
    Ctx { schema, r, s }
}

fn build_expr(c: &Ctx, spec: ExprSpec) -> (Expr, usize) {
    match spec {
        ExprSpec::R => (rel(c.r), 2),
        ExprSpec::S => (rel(c.s), 1),
        ExprSpec::Iden => (Expr::Iden, 2),
        ExprSpec::RTrans => (rel(c.r).transpose(), 2),
        ExprSpec::RJoinR => (rel(c.r).join(&rel(c.r)), 2),
        ExprSpec::RClos => (rel(c.r).closure(), 2),
        ExprSpec::SProdS => (rel(c.s).product(&rel(c.s)), 2),
    }
}

fn build_formula(c: &Ctx, spec: FormulaSpec) -> Formula {
    let (ea, aa) = build_expr(c, spec.a);
    let (eb, ab) = build_expr(c, spec.b);
    match spec.op {
        0 if aa == ab => ea.in_(&eb),
        1 if aa == ab => ea.equal(&eb).not(),
        2 => ea.some().and(&eb.some()),
        3 => ea.no().or(&eb.some()),
        4 if aa == ab => ea.intersect(&eb).some(),
        5 => patterns::acyclic(&rel(c.r)).and(&ea.some()),
        _ => ea.some(),
    }
}

/// Exhaustively enumerates all instances over a tiny universe and checks
/// whether any satisfies the formula.
fn brute_force_sat(c: &Ctx, n: usize, formula: &Formula) -> bool {
    let pair_count = n * n;
    assert!(pair_count <= 9, "keep brute force tiny");
    for r_bits in 0u32..(1 << pair_count) {
        for s_bits in 0u32..(1 << n) {
            let mut inst = Instance::empty(&c.schema, n);
            let mut pairs = Vec::new();
            for i in 0..pair_count {
                if (r_bits >> i) & 1 == 1 {
                    pairs.push(((i / n) as u32, (i % n) as u32));
                }
            }
            inst.set(c.r, TupleSet::from_pairs(pairs));
            let atoms: Vec<u32> = (0..n as u32).filter(|&a| (s_bits >> a) & 1 == 1).collect();
            inst.set(c.s, TupleSet::from_atoms(atoms));
            if eval_formula(&c.schema, &inst, formula).unwrap() {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SAT-pipeline verdict == brute-force verdict; SAT models satisfy the
    /// formula under the ground evaluator.
    #[test]
    fn finder_matches_brute_force(spec in arb_formula()) {
        let c = ctx();
        let n = 3;
        let formula = build_formula(&c, spec);
        let problem = Problem {
            schema: c.schema.clone(),
            bounds: Bounds::new(&c.schema, n),
            formula: formula.clone(),
        };
        let expected = brute_force_sat(&c, n, &formula);
        for strategy in [ClosureStrategy::IterativeSquaring, ClosureStrategy::Unrolled] {
            let opts = Options { closure: strategy, ..Options::default() };
            let (verdict, _) = ModelFinder::new(opts).solve(&problem).unwrap();
            match verdict {
                modelfinder::Verdict::Sat(inst) => {
                    prop_assert!(expected, "finder SAT, brute force UNSAT ({strategy:?})");
                    prop_assert!(eval_formula(&c.schema, &inst, &formula).unwrap(),
                        "decoded instance does not satisfy formula ({strategy:?})");
                }
                modelfinder::Verdict::Unsat => {
                    prop_assert!(!expected, "finder UNSAT, brute force SAT ({strategy:?})");
                }
                modelfinder::Verdict::Unknown => prop_assert!(false, "no budget set"),
            }
        }
    }

    /// Symmetry breaking never changes the verdict.
    #[test]
    fn symmetry_breaking_preserves_verdict(spec in arb_formula()) {
        let c = ctx();
        let formula = build_formula(&c, spec);
        let problem = Problem {
            schema: c.schema.clone(),
            bounds: Bounds::new(&c.schema, 3),
            formula,
        };
        let (plain, _) = ModelFinder::new(Options::default()).solve(&problem).unwrap();
        let (broken, _) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
        prop_assert_eq!(plain.instance().is_some(), broken.instance().is_some());
    }
}
