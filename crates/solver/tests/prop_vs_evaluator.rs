//! Differential testing: the SAT-based model finder against the ground
//! evaluator and exhaustive instance enumeration.

use modelfinder::{ClosureStrategy, ModelFinder, Options, Problem};
use relational::schema::rel;
use relational::{eval_formula, patterns, Bounds, Expr, Formula, Instance, Schema, TupleSet};
use testkit::Rng;

#[derive(Debug, Clone, Copy)]
enum ExprSpec {
    R,
    S,
    Iden,
    RTrans,
    RJoinR,
    RClos,
    SProdS,
}

const LEAVES: [ExprSpec; 7] = [
    ExprSpec::R,
    ExprSpec::S,
    ExprSpec::Iden,
    ExprSpec::RTrans,
    ExprSpec::RJoinR,
    ExprSpec::RClos,
    ExprSpec::SProdS,
];

#[derive(Debug, Clone, Copy)]
struct FormulaSpec {
    a: ExprSpec,
    b: ExprSpec,
    op: u8,
}

/// A small random formula over one binary relation `r` and one unary set
/// `s`.
fn gen_spec(rng: &mut Rng) -> FormulaSpec {
    FormulaSpec {
        a: *rng.choose(&LEAVES),
        b: *rng.choose(&LEAVES),
        op: rng.below(6) as u8,
    }
}

struct Ctx {
    schema: Schema,
    r: relational::RelId,
    s: relational::RelId,
}

fn ctx() -> Ctx {
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let s = schema.relation("s", 1);
    Ctx { schema, r, s }
}

fn build_expr(c: &Ctx, spec: ExprSpec) -> (Expr, usize) {
    match spec {
        ExprSpec::R => (rel(c.r), 2),
        ExprSpec::S => (rel(c.s), 1),
        ExprSpec::Iden => (Expr::Iden, 2),
        ExprSpec::RTrans => (rel(c.r).transpose(), 2),
        ExprSpec::RJoinR => (rel(c.r).join(&rel(c.r)), 2),
        ExprSpec::RClos => (rel(c.r).closure(), 2),
        ExprSpec::SProdS => (rel(c.s).product(&rel(c.s)), 2),
    }
}

fn build_formula(c: &Ctx, spec: FormulaSpec) -> Formula {
    let (ea, aa) = build_expr(c, spec.a);
    let (eb, ab) = build_expr(c, spec.b);
    match spec.op {
        0 if aa == ab => ea.in_(&eb),
        1 if aa == ab => ea.equal(&eb).not(),
        2 => ea.some().and(&eb.some()),
        3 => ea.no().or(&eb.some()),
        4 if aa == ab => ea.intersect(&eb).some(),
        5 => patterns::acyclic(&rel(c.r)).and(&ea.some()),
        _ => ea.some(),
    }
}

/// Exhaustively enumerates all instances over a tiny universe and checks
/// whether any satisfies the formula.
fn brute_force_sat(c: &Ctx, n: usize, formula: &Formula) -> bool {
    let pair_count = n * n;
    assert!(pair_count <= 9, "keep brute force tiny");
    for r_bits in 0u32..(1 << pair_count) {
        for s_bits in 0u32..(1 << n) {
            let mut inst = Instance::empty(&c.schema, n);
            let mut pairs = Vec::new();
            for i in 0..pair_count {
                if (r_bits >> i) & 1 == 1 {
                    pairs.push(((i / n) as u32, (i % n) as u32));
                }
            }
            inst.set(c.r, TupleSet::from_pairs(pairs));
            let atoms: Vec<u32> = (0..n as u32).filter(|&a| (s_bits >> a) & 1 == 1).collect();
            inst.set(c.s, TupleSet::from_atoms(atoms));
            if eval_formula(&c.schema, &inst, formula).unwrap() {
                return true;
            }
        }
    }
    false
}

/// SAT-pipeline verdict == brute-force verdict; SAT models satisfy the
/// formula under the ground evaluator.
#[test]
fn finder_matches_brute_force() {
    testkit::forall("finder_matches_brute_force", 64, |rng| {
        let spec = gen_spec(rng);
        let c = ctx();
        let n = 3;
        let formula = build_formula(&c, spec);
        let problem = Problem {
            schema: c.schema.clone(),
            bounds: Bounds::new(&c.schema, n),
            formula: formula.clone(),
        };
        let expected = brute_force_sat(&c, n, &formula);
        for strategy in [
            ClosureStrategy::IterativeSquaring,
            ClosureStrategy::Unrolled,
        ] {
            let opts = Options {
                closure: strategy,
                ..Options::default()
            };
            let (verdict, _) = ModelFinder::new(opts).solve(&problem).unwrap();
            match verdict {
                modelfinder::Verdict::Sat(inst) => {
                    assert!(expected, "finder SAT, brute force UNSAT ({strategy:?})");
                    assert!(
                        eval_formula(&c.schema, &inst, &formula).unwrap(),
                        "decoded instance does not satisfy formula ({strategy:?})"
                    );
                }
                modelfinder::Verdict::Unsat => {
                    assert!(!expected, "finder UNSAT, brute force SAT ({strategy:?})");
                }
                modelfinder::Verdict::Unknown => panic!("no budget set"),
            }
        }
    });
}

/// Symmetry breaking never changes the verdict.
#[test]
fn symmetry_breaking_preserves_verdict() {
    testkit::forall("symmetry_breaking_preserves_verdict", 64, |rng| {
        let spec = gen_spec(rng);
        let c = ctx();
        let formula = build_formula(&c, spec);
        let problem = Problem {
            schema: c.schema.clone(),
            bounds: Bounds::new(&c.schema, 3),
            formula,
        };
        let (plain, _) = ModelFinder::new(Options::default())
            .solve(&problem)
            .unwrap();
        let (broken, _) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
        assert_eq!(plain.instance().is_some(), broken.instance().is_some());
    });
}
