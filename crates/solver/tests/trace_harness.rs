//! End-to-end checks for the event tracer under the query harness: span
//! nesting stays balanced across the worker pool, timeouts attach a
//! non-empty autopsy, and the Chrome export carries worker thread labels.

use std::collections::HashMap;
use std::time::Duration;

use modelfinder::obs::trace::{Autopsy, TraceEventKind, Tracer};
use modelfinder::{HarnessOptions, ModelFinder, Options, Problem, Query, QueryOutput};
use relational::patterns;
use relational::schema::rel;
use relational::{Bounds, Schema};

/// A small satisfiable problem (acyclic non-empty binary relation).
fn small_problem(universe: usize) -> Problem {
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let bounds = Bounds::new(&schema, universe);
    Problem {
        schema,
        bounds,
        formula: patterns::acyclic(&rel(r)).and(&rel(r).some()),
    }
}

fn solve_query(name: &str, universe: usize) -> Query {
    let name = name.to_string();
    Query::new(name, move |ctx| {
        let options = Options::default()
            .with_cancel(ctx.cancel.clone())
            .with_tracer(ctx.trace.clone());
        let (verdict, report) = ModelFinder::new(options)
            .solve(&small_problem(universe))
            .expect("well-typed problem");
        report.record_obs(&ctx.obs);
        QueryOutput {
            verdict: if verdict.instance().is_some() {
                "Sat".to_string()
            } else {
                "Unsat".to_string()
            },
            sat_vars: report.sat_vars as u64,
            sat_clauses: report.sat_clauses as u64,
            ..QueryOutput::default()
        }
    })
}

#[test]
fn span_nesting_stays_balanced_under_worker_pool() {
    let tracer = Tracer::for_export();
    let options = HarnessOptions {
        jobs: 3,
        timeout: Some(Duration::from_secs(60)),
        trace: tracer.clone(),
        ..HarnessOptions::default()
    };
    let queries: Vec<Query> = (0..9)
        .map(|i| solve_query(&format!("q{i}"), 3 + (i % 3)))
        .collect();
    let records = modelfinder::harness::run_queries(queries, &options, |_| {});
    assert_eq!(records.len(), 9);
    assert!(records.iter().all(|r| r.verdict == "Sat"));

    let snapshot = tracer.snapshot();
    assert_eq!(snapshot.dropped, 0, "export capacity must not drop events");
    // Replay each thread's events through a stack: every SpanEnd must
    // match the innermost open SpanBegin, and every stack must drain.
    let mut stacks: HashMap<u32, Vec<String>> = HashMap::new();
    let mut query_spans = 0;
    for e in &snapshot.events {
        match e.kind {
            TraceEventKind::SpanBegin => {
                if e.name.starts_with("query:") {
                    query_spans += 1;
                }
                stacks.entry(e.tid).or_default().push(e.name.clone());
            }
            TraceEventKind::SpanEnd => {
                let top = stacks.entry(e.tid).or_default().pop();
                assert_eq!(top.as_deref(), Some(e.name.as_str()), "mismatched end");
            }
            _ => {}
        }
    }
    assert!(stacks.values().all(Vec::is_empty), "spans left open");
    assert_eq!(query_spans, 9, "one query span per query");
    // Workers label their threads; the export surfaces the labels.
    let labels: Vec<&str> = snapshot.threads.iter().map(|(_, l)| l.as_str()).collect();
    assert!(labels.contains(&"worker-0"), "labels: {labels:?}");
    // Phase spans from the finder appear inside the harness spans.
    for phase in ["translate", "encode", "solve"] {
        assert!(
            snapshot
                .events
                .iter()
                .any(|e| e.kind == TraceEventKind::SpanBegin && e.name == phase),
            "missing {phase} span"
        );
    }
}

#[test]
fn timed_out_query_carries_a_non_empty_autopsy() {
    let options = HarnessOptions {
        jobs: 2,
        // Zero budget: every query is marked timed out as soon as it
        // finishes (cooperative path), which must attach an autopsy.
        timeout: Some(Duration::ZERO),
        grace: Duration::from_secs(120),
        ..HarnessOptions::default()
    };
    let queries = vec![solve_query("slowpoke", 4)];
    let records = modelfinder::harness::run_queries(queries, &options, |_| {});
    assert_eq!(records.len(), 1);
    let rec = &records[0];
    assert!(rec.timed_out);
    let autopsy: &Autopsy = rec.autopsy.as_ref().expect("timeout must attach autopsy");
    assert!(!autopsy.is_empty(), "autopsy must carry events or counters");
    assert!(
        autopsy
            .events
            .iter()
            .any(|e| e.name.starts_with("query:slowpoke")),
        "flight recorder should hold the query span"
    );
    let json = rec.to_json();
    assert!(json.contains("\"autopsy\":{\"events\":["), "json: {json}");
    assert!(json.contains("\"counters\":{"), "json: {json}");
}

#[test]
fn queries_within_budget_have_no_autopsy() {
    let options = HarnessOptions {
        jobs: 2,
        timeout: Some(Duration::from_secs(60)),
        ..HarnessOptions::default()
    };
    let queries = vec![solve_query("quick", 3)];
    let records = modelfinder::harness::run_queries(queries, &options, |_| {});
    assert!(!records[0].timed_out);
    assert!(records[0].autopsy.is_none());
    assert!(!records[0].to_json().contains("autopsy"));
}
