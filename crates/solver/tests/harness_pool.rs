//! The worker-pool harness: parallel/sequential verdict agreement,
//! cooperative timeouts, abandonment of uncooperative jobs, and panic
//! containment.

use std::time::{Duration, Instant};

use modelfinder::harness::{run_queries, HarnessOptions, Query, QueryOutput};
use modelfinder::{ModelFinder, Options, Problem, Verdict};
use relational::schema::rel;
use relational::{patterns, Bounds, Schema};
use satsolver::{Lit, SolveResult, Solver, Var};

/// A small model-finding query; `contradict` flips it to UNSAT.
fn finder_query(name: &str, contradict: bool) -> Query {
    let name = name.to_string();
    Query::new(name, move |ctx| {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 3);
        let mut formula = patterns::acyclic(&rel(r)).and(&rel(r).some());
        if contradict {
            formula = formula.and(&rel(r).no());
        }
        let problem = Problem {
            schema,
            bounds,
            formula,
        };
        let mut opts = Options::check().with_cancel(ctx.cancel.clone());
        opts.deadline = ctx.timeout;
        let (verdict, report) = ModelFinder::new(opts).solve(&problem).unwrap();
        QueryOutput {
            verdict: match verdict {
                Verdict::Sat(_) => "Sat".to_string(),
                Verdict::Unsat => "Unsat".to_string(),
                Verdict::Unknown => "Unknown".to_string(),
            },
            sat_vars: report.sat_vars as u64,
            sat_clauses: report.sat_clauses as u64,
            conflicts: report.solver_stats.conflicts,
            path: None,
            detail: None,
        }
    })
}

/// An unsatisfiable pigeonhole instance big enough to outlive any test
/// timeout, run straight on the SAT solver with the context's token.
fn hard_cooperative_query(name: &str) -> Query {
    Query::new(name.to_string(), |ctx| {
        let (pigeons, holes) = (11usize, 10usize);
        let mut s = Solver::new();
        let var: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &var {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                for (a, b) in var[p1].iter().zip(&var[p2]) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        s.set_cancel_token(Some(ctx.cancel.clone()));
        let verdict = match s.solve() {
            SolveResult::Sat => "Sat",
            SolveResult::Unsat => "Unsat",
            SolveResult::Unknown(_) => "Unknown",
        };
        QueryOutput {
            verdict: verdict.to_string(),
            conflicts: s.stats().conflicts,
            ..QueryOutput::default()
        }
    })
}

fn verdicts(records: &[modelfinder::QueryRecord]) -> Vec<(String, String)> {
    records
        .iter()
        .map(|r| (r.name.clone(), r.verdict.clone()))
        .collect()
}

#[test]
fn parallel_verdicts_match_sequential() {
    let make = || {
        (0..8)
            .map(|i| finder_query(&format!("q{i}"), i % 3 == 0))
            .collect::<Vec<_>>()
    };
    let sequential = run_queries(
        make(),
        &HarnessOptions {
            jobs: 1,
            timeout: None,
            ..HarnessOptions::default()
        },
        |_| {},
    );
    let parallel = run_queries(
        make(),
        &HarnessOptions {
            jobs: 4,
            timeout: Some(Duration::from_secs(60)),
            ..HarnessOptions::default()
        },
        |_| {},
    );
    assert_eq!(verdicts(&sequential), verdicts(&parallel));
    assert!(sequential.iter().all(|r| !r.timed_out));
    assert!(parallel.iter().all(|r| !r.timed_out));
    // Input order is preserved in the returned records.
    let names: Vec<&str> = parallel.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ["q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7"]);
}

#[test]
fn records_stream_in_completion_order_and_cover_all_queries() {
    let queries: Vec<Query> = (0..5)
        .map(|i| finder_query(&format!("q{i}"), false))
        .collect();
    let mut streamed = Vec::new();
    let records = run_queries(
        queries,
        &HarnessOptions {
            jobs: 3,
            timeout: Some(Duration::from_secs(60)),
            ..HarnessOptions::default()
        },
        |r| streamed.push(r.name.clone()),
    );
    assert_eq!(streamed.len(), records.len());
    let mut sorted = streamed.clone();
    sorted.sort();
    assert_eq!(sorted, ["q0", "q1", "q2", "q3", "q4"]);
}

#[test]
fn cooperative_query_times_out_promptly() {
    let t0 = Instant::now();
    let records = run_queries(
        vec![hard_cooperative_query("php-11-10")],
        &HarnessOptions {
            jobs: 2,
            timeout: Some(Duration::from_millis(200)),
            grace: Duration::from_secs(30),
            ..HarnessOptions::default()
        },
        |_| {},
    );
    // The generous grace proves the *cooperative* path fired: the solver
    // observed the token, no abandonment was needed.
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "cancellation took {:?}",
        t0.elapsed()
    );
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].verdict, "Unknown");
    assert!(records[0].timed_out);
}

#[test]
fn uncooperative_query_is_abandoned_not_hung() {
    // This job ignores its token entirely; only abandonment saves the
    // sweep. The stuck thread is leaked by design and dies with the test
    // process.
    let stuck = Query::new("stuck", |_ctx| {
        std::thread::sleep(Duration::from_secs(20));
        QueryOutput {
            verdict: "Sat".to_string(),
            ..QueryOutput::default()
        }
    });
    let quick = finder_query("quick", false);
    let t0 = Instant::now();
    let records = run_queries(
        vec![stuck, quick],
        &HarnessOptions {
            jobs: 1,
            timeout: Some(Duration::from_millis(100)),
            grace: Duration::from_millis(100),
            ..HarnessOptions::default()
        },
        |_| {},
    );
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "abandonment took {:?}",
        t0.elapsed()
    );
    assert_eq!(records[0].name, "stuck");
    assert_eq!(records[0].verdict, "Unknown");
    assert!(records[0].timed_out);
    // The replacement worker still ran the remaining query.
    assert_eq!(records[1].name, "quick");
    assert_eq!(records[1].verdict, "Sat");
}

#[test]
fn panicking_query_degrades_to_unknown() {
    let boom = Query::new("boom", |_ctx| -> QueryOutput {
        panic!("deliberate test panic");
    });
    let quick = finder_query("quick", true);
    let records = run_queries(
        vec![boom, quick],
        &HarnessOptions {
            jobs: 2,
            timeout: Some(Duration::from_secs(60)),
            ..HarnessOptions::default()
        },
        |_| {},
    );
    assert_eq!(records[0].verdict, "Unknown");
    assert!(records[0]
        .detail
        .as_deref()
        .unwrap()
        .contains("deliberate test panic"));
    assert_eq!(records[1].verdict, "Unsat");
}

#[test]
fn json_records_are_well_formed() {
    let rec = modelfinder::QueryRecord {
        name: "weird \"name\"\n".to_string(),
        verdict: "Unsat".to_string(),
        timed_out: false,
        sat_vars: 12,
        sat_clauses: 34,
        conflicts: 5,
        wall: Duration::from_millis(1500),
        path: Some("symbolic".to_string()),
        detail: Some("tab\there".to_string()),
        obs: modelfinder::obs::Registry::disabled(),
        autopsy: None,
    };
    let json = rec.to_json();
    assert_eq!(
        json,
        "{\"test\":\"weird \\\"name\\\"\\n\",\"verdict\":\"Unsat\",\
         \"timed_out\":false,\"vars\":12,\"clauses\":34,\"conflicts\":5,\
         \"wall_secs\":1.500000,\"path\":\"symbolic\",\"detail\":\"tab\\there\"}"
    );
    // And without path/detail the keys are omitted.
    let bare = modelfinder::QueryRecord {
        path: None,
        detail: None,
        ..rec
    };
    assert!(!bare.to_json().contains("detail"));
    assert!(!bare.to_json().contains("path"));
}
