//! A parallel, deadline-aware query harness.
//!
//! The paper's evaluation (Figure 17) sweeps dozens of bounded
//! model-finding queries whose runtimes span three orders of magnitude;
//! running them sequentially with no wall-clock control means one
//! pathological query stalls the whole sweep. This module fans a list of
//! [`Query`] jobs across a `std::thread` worker pool, enforces a
//! per-query timeout, and emits one [`QueryRecord`] per query — in JSON
//! Lines form via [`QueryRecord::to_json`] when machine-readable output
//! is wanted.
//!
//! Timeout enforcement is two-layered:
//!
//! 1. **Cooperative**: each job receives a [`QueryCtx`] carrying a
//!    [`CancelToken`] and the per-query time budget. Jobs that discharge
//!    to the SAT solver thread these straight into
//!    [`crate::Options::with_cancel`] / [`crate::Options::with_deadline`]
//!    and stop promptly, yielding a verdict of `Unknown`.
//! 2. **Supervised**: a dispatcher fires the token once a job passes its
//!    deadline, and if the job still has not returned after a grace
//!    period (a job that never polls the token, e.g. a pure enumeration),
//!    the worker is *abandoned*: a timeout record is emitted, a
//!    replacement worker is spawned, and the stuck thread is left to die
//!    with the process. The sweep therefore always completes — a timeout
//!    degrades to `Unknown`, never to a hang.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use satsolver::CancelToken;

/// Context handed to a running query: its cancellation token and time
/// budget, for threading into whatever engine the job drives.
#[derive(Debug, Clone)]
pub struct QueryCtx {
    /// Fired by the dispatcher when the query passes its deadline.
    pub cancel: CancelToken,
    /// The per-query wall-clock budget, if one is configured.
    pub timeout: Option<Duration>,
    /// This query's private observability registry. Enabled when
    /// [`HarnessOptions::obs`] is enabled (or tracing is on, so a
    /// timeout autopsy has counters to snapshot); whatever the job
    /// records here is merged into that parent registry when the query
    /// finishes (the per-query contents survive on
    /// [`QueryRecord::obs`]).
    pub obs: obs::Registry,
    /// The run's event tracer — thread the clone into
    /// [`crate::Options::with_tracer`] / [`crate::Session::set_tracer`]
    /// so the query's phases land on this worker's flight-recorder ring.
    pub trace: obs::trace::Tracer,
}

/// What a query reports back when it completes on its own.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Verdict label (`"Sat"`, `"Unsat"`, `"Unknown"`, `"Ok"`, …).
    pub verdict: String,
    /// CNF variables, when the query ran the SAT pipeline (else 0).
    pub sat_vars: u64,
    /// CNF clauses, when the query ran the SAT pipeline (else 0).
    pub sat_clauses: u64,
    /// SAT conflicts spent (else 0).
    pub conflicts: u64,
    /// How the query was answered, when the caller distinguishes
    /// encoding modes (`"symbolic"` for the relational SAT encoding,
    /// `"enumeration"` for exhaustive execution enumeration). `None`
    /// for queries without a meaningful mode.
    pub path: Option<String>,
    /// Free-form extra information carried into the record.
    pub detail: Option<String>,
}

/// A named unit of work for the harness.
pub struct Query {
    /// Display/record name of the query.
    pub name: String,
    run: Box<dyn FnOnce(&QueryCtx) -> QueryOutput + Send + 'static>,
}

impl Query {
    /// Creates a query running `f`.
    pub fn new(
        name: impl Into<String>,
        f: impl FnOnce(&QueryCtx) -> QueryOutput + Send + 'static,
    ) -> Query {
        Query {
            name: name.into(),
            run: Box::new(f),
        }
    }
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Query").field("name", &self.name).finish()
    }
}

/// The per-query result row.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Query name.
    pub name: String,
    /// Verdict label; `"Unknown"` for a timed-out or panicked query.
    pub verdict: String,
    /// Whether the query exceeded its deadline.
    pub timed_out: bool,
    /// CNF variables (0 when not applicable).
    pub sat_vars: u64,
    /// CNF clauses (0 when not applicable).
    pub sat_clauses: u64,
    /// SAT conflicts spent (0 when not applicable).
    pub conflicts: u64,
    /// Wall-clock time the query ran (or ran until abandonment).
    pub wall: Duration,
    /// Encoding mode (`"symbolic"` / `"enumeration"`), when reported.
    pub path: Option<String>,
    /// Free-form extra information.
    pub detail: Option<String>,
    /// The query's observability registry (disabled/empty unless
    /// [`HarnessOptions::obs`] was enabled). Holds only this query's
    /// counters; the harness has already merged them into the parent.
    pub obs: obs::Registry,
    /// The query's postmortem — the last flight-recorder events and a
    /// counter snapshot, captured at completion. `Some` exactly when the
    /// query timed out or was cancelled.
    pub autopsy: Option<obs::trace::Autopsy>,
}

impl QueryRecord {
    /// This record as one JSON Lines object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"test\":");
        json_string(&mut s, &self.name);
        s.push_str(",\"verdict\":");
        json_string(&mut s, &self.verdict);
        s.push_str(&format!(
            ",\"timed_out\":{},\"vars\":{},\"clauses\":{},\"conflicts\":{},\"wall_secs\":{:.6}",
            self.timed_out,
            self.sat_vars,
            self.sat_clauses,
            self.conflicts,
            self.wall.as_secs_f64()
        ));
        if let Some(p) = &self.path {
            s.push_str(",\"path\":");
            json_string(&mut s, p);
        }
        if let Some(d) = &self.detail {
            s.push_str(",\"detail\":");
            json_string(&mut s, d);
        }
        if let Some(a) = &self.autopsy {
            s.push_str(",\"autopsy\":");
            s.push_str(&a.to_json());
        }
        s.push('}');
        s
    }
}

/// Appends `value` to `out` as a JSON string literal with escaping.
///
/// Delegates to [`obs::json::escape_into`], the workspace's one JSON
/// string encoder (round-trip tested against [`obs::json::unescape`]).
pub fn json_string(out: &mut String, value: &str) {
    obs::json::escape_into(out, value);
}

/// A keyed checkout/checkin pool of reusable per-worker state —
/// typically one [`crate::Session`] per (model, bound) key and worker.
///
/// Harness jobs run on up to `jobs` workers, so at most `jobs` values
/// exist per key: each job checks a value out, uses it exclusively, and
/// checks it back in for the next job with the same key. A job that
/// panics or is abandoned by the dispatcher simply never returns its
/// value, which is exactly right — an interrupted solver is mid-search
/// and must not be handed to another query.
#[derive(Debug, Default)]
pub struct SessionPool<K, S> {
    idle: Mutex<HashMap<K, Vec<S>>>,
    created: Mutex<u64>,
    reused: Mutex<u64>,
}

impl<K: std::hash::Hash + Eq, S> SessionPool<K, S> {
    /// Creates an empty pool.
    pub fn new() -> SessionPool<K, S> {
        SessionPool {
            idle: Mutex::new(HashMap::new()),
            created: Mutex::new(0),
            reused: Mutex::new(0),
        }
    }

    /// Takes an idle value for `key`, or builds one with `make`.
    ///
    /// `make` runs outside the pool lock, so concurrent checkouts of the
    /// same key may build several values — bounded by the number of
    /// workers, which is the intended "one session per worker" shape.
    pub fn checkout(&self, key: &K, make: impl FnOnce() -> S) -> S {
        let existing = self.idle.lock().unwrap().get_mut(key).and_then(Vec::pop);
        match existing {
            Some(s) => {
                *self.reused.lock().unwrap() += 1;
                s
            }
            None => {
                *self.created.lock().unwrap() += 1;
                make()
            }
        }
    }

    /// Returns a value to the pool for later checkouts of `key`.
    pub fn checkin(&self, key: K, value: S) {
        self.idle
            .lock()
            .unwrap()
            .entry(key)
            .or_default()
            .push(value);
    }

    /// (values built, checkouts served by reuse) so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.created.lock().unwrap(), *self.reused.lock().unwrap())
    }

    /// Idle values currently parked in the pool, across all keys — a
    /// liveness gauge for long-running services: a cancelled or crashed
    /// query that failed to check its session back in shows up as a
    /// permanently lower idle count.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap().values().map(Vec::len).sum()
    }
}

/// Worker-pool configuration.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Worker threads. 1 (with no timeout) runs inline on the caller.
    pub jobs: usize,
    /// Per-query wall-clock budget; `None` disables timeouts.
    pub timeout: Option<Duration>,
    /// How long after firing a query's cancel token the dispatcher waits
    /// before abandoning the worker running it.
    pub grace: Duration,
    /// Parent observability registry. Disabled (the default) costs
    /// nothing; when enabled, every query gets a fresh child registry
    /// in its [`QueryCtx`] whose contents are merged here as the query
    /// finishes. Merge order follows completion order, so run totals
    /// are deterministic for single-job runs.
    pub obs: obs::Registry,
    /// The run's event tracer. Defaults to the always-on flight
    /// recorder ([`obs::trace::Tracer::flight_recorder`]): bounded
    /// per-worker rings whose tail becomes the timeout autopsy. Swap in
    /// [`obs::trace::Tracer::for_export`] for a full `--trace-out`
    /// timeline, or [`obs::trace::Tracer::disabled`] to turn tracing
    /// off entirely.
    pub trace: obs::trace::Tracer,
}

impl Default for HarnessOptions {
    fn default() -> HarnessOptions {
        HarnessOptions {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            timeout: None,
            grace: Duration::from_secs(2),
            obs: obs::Registry::disabled(),
            trace: obs::trace::Tracer::flight_recorder(),
        }
    }
}

/// Runs every query, invoking `on_record` as each finishes (completion
/// order), and returns the records in input order.
///
/// With `jobs <= 1` and no timeout the queries run inline on the calling
/// thread; otherwise a worker pool is used. Verdicts are identical
/// either way for queries that finish within budget — scheduling affects
/// only wall-clock numbers.
pub fn run_queries(
    queries: Vec<Query>,
    options: &HarnessOptions,
    mut on_record: impl FnMut(&QueryRecord),
) -> Vec<QueryRecord> {
    if options.jobs <= 1 && options.timeout.is_none() {
        return queries
            .into_iter()
            .map(|q| {
                let rec = run_one(q, options.timeout, &options.obs, &options.trace);
                on_record(&rec);
                rec
            })
            .collect();
    }

    let total = queries.len();
    let names: Vec<String> = queries.iter().map(|q| q.name.clone()).collect();
    let queue: Arc<Mutex<VecDeque<(usize, Query)>>> =
        Arc::new(Mutex::new(queries.into_iter().enumerate().collect()));
    // Queries currently executing: index -> (start time, token).
    let inflight: Arc<Mutex<HashMap<usize, (Instant, CancelToken)>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let (tx, rx) = mpsc::channel::<(usize, QueryRecord)>();

    let worker_counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let spawn_worker = {
        let queue = Arc::clone(&queue);
        let inflight = Arc::clone(&inflight);
        let timeout = options.timeout;
        let parent_obs = options.obs.clone();
        let trace = options.trace.clone();
        let worker_counter = Arc::clone(&worker_counter);
        move |tx: mpsc::Sender<(usize, QueryRecord)>| {
            let queue = Arc::clone(&queue);
            let inflight = Arc::clone(&inflight);
            let parent_obs = parent_obs.clone();
            let trace = trace.clone();
            let worker = worker_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            std::thread::spawn(move || {
                trace.set_thread_label(&format!("worker-{worker}"));
                loop {
                    let Some((idx, query)) = queue.lock().unwrap().pop_front() else {
                        return;
                    };
                    let token = CancelToken::new();
                    let start = Instant::now();
                    inflight.lock().unwrap().insert(idx, (start, token.clone()));
                    let rec = execute(query, token.clone(), timeout, start, &parent_obs, &trace);
                    let still_ours = inflight.lock().unwrap().remove(&idx).is_some();
                    if !still_ours {
                        // The dispatcher abandoned this query (and spawned a
                        // replacement worker): drop the late result and exit
                        // rather than oversubscribe the pool.
                        return;
                    }
                    if tx.send((idx, rec)).is_err() {
                        return;
                    }
                }
            });
        }
    };

    for _ in 0..options.jobs.max(1).min(total.max(1)) {
        spawn_worker(tx.clone());
    }

    // Every query fills its slot exactly once: a worker send for a
    // completed query, or an abandonment record minted here. The
    // dispatcher holds `tx` for replacement workers, so the channel never
    // disconnects while we wait.
    let mut slots: Vec<Option<QueryRecord>> = (0..total).map(|_| None).collect();
    let mut filled = 0usize;
    while filled < total {
        if let Ok((idx, rec)) = rx.recv_timeout(Duration::from_millis(50)) {
            if slots[idx].is_none() {
                on_record(&rec);
                slots[idx] = Some(rec);
                filled += 1;
            }
        }
        let Some(timeout) = options.timeout else {
            continue;
        };
        let now = Instant::now();
        let abandoned: Vec<(usize, Instant)> = {
            let mut table = inflight.lock().unwrap();
            let mut overdue = Vec::new();
            for (&idx, (start, token)) in table.iter() {
                if now >= *start + timeout {
                    token.cancel();
                    if now >= *start + timeout + options.grace {
                        overdue.push((idx, *start));
                    }
                }
            }
            for (idx, _) in &overdue {
                table.remove(idx);
            }
            overdue
        };
        for (idx, start) in abandoned {
            // The worker ignored its token past the grace period: record
            // the timeout, replace the worker, leave the thread behind.
            if slots[idx].is_none() {
                let obs = options.obs.child();
                obs.add("harness.queries", 1);
                obs.add("harness.timeouts", 1);
                options.obs.merge_from(&obs);
                // The stuck worker can't snapshot its own ring, so read
                // the merged tail from here — the seqlock read path skips
                // any slot the worker is mid-write on.
                let autopsy =
                    obs::trace::Autopsy::capture(options.trace.tail(AUTOPSY_EVENTS), &obs);
                let rec = QueryRecord {
                    name: names[idx].clone(),
                    verdict: "Unknown".to_string(),
                    timed_out: true,
                    sat_vars: 0,
                    sat_clauses: 0,
                    conflicts: 0,
                    wall: now - start,
                    path: None,
                    detail: Some("abandoned: deadline and grace period expired".to_string()),
                    obs,
                    autopsy: Some(autopsy),
                };
                on_record(&rec);
                slots[idx] = Some(rec);
                filled += 1;
            }
            spawn_worker(tx.clone());
        }
    }

    slots
        .into_iter()
        .map(|slot| slot.expect("every query fills its slot"))
        .collect()
}

/// Flight-recorder events attached to a timeout autopsy: the last K
/// events of the thread that ran the query.
const AUTOPSY_EVENTS: usize = 64;

/// Runs one query inline (the sequential path).
fn run_one(
    query: Query,
    timeout: Option<Duration>,
    parent_obs: &obs::Registry,
    trace: &obs::trace::Tracer,
) -> QueryRecord {
    let token = CancelToken::new();
    execute(query, token, timeout, Instant::now(), parent_obs, trace)
}

/// Executes a query body, converting panics into `Unknown` records, and
/// merges the query's registry into the parent.
fn execute(
    query: Query,
    token: CancelToken,
    timeout: Option<Duration>,
    start: Instant,
    parent_obs: &obs::Registry,
    trace: &obs::trace::Tracer,
) -> QueryRecord {
    let ctx = QueryCtx {
        cancel: token.clone(),
        timeout,
        // Tracing implies an enabled per-query registry so a timeout
        // autopsy has counters to snapshot; merging it into a disabled
        // parent is a no-op, so flagless output is unaffected.
        obs: if parent_obs.enabled() || trace.enabled() {
            obs::Registry::new()
        } else {
            obs::Registry::disabled()
        },
        trace: trace.clone(),
    };
    let name = query.name.clone();
    let query_span = trace.span(&format!("query:{name}"));
    let outcome = catch_unwind(AssertUnwindSafe(|| (query.run)(&ctx)));
    drop(query_span);
    let wall = start.elapsed();
    // The solver may observe its own deadline and return just before the
    // supervisor cancels the token — count that as a timeout too.
    let timed_out = token.is_cancelled() || timeout.is_some_and(|t| wall >= t);
    ctx.obs.add("harness.queries", 1);
    if timed_out {
        ctx.obs.add("harness.timeouts", 1);
    }
    if outcome.is_err() {
        ctx.obs.add("harness.panics", 1);
    }
    ctx.obs.record_duration("time.query_wall", wall);
    parent_obs.merge_from(&ctx.obs);
    let autopsy = timed_out
        .then(|| obs::trace::Autopsy::capture(trace.tail_current_thread(AUTOPSY_EVENTS), &ctx.obs));
    match outcome {
        Ok(out) => QueryRecord {
            name,
            verdict: out.verdict,
            timed_out,
            sat_vars: out.sat_vars,
            sat_clauses: out.sat_clauses,
            conflicts: out.conflicts,
            wall,
            path: out.path,
            detail: out.detail,
            obs: ctx.obs,
            autopsy,
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "query panicked".to_string());
            QueryRecord {
                name,
                verdict: "Unknown".to_string(),
                timed_out,
                sat_vars: 0,
                sat_clauses: 0,
                conflicts: 0,
                wall,
                path: None,
                detail: Some(format!("panic: {msg}")),
                obs: ctx.obs,
                autopsy,
            }
        }
    }
}
