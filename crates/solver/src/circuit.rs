//! A hash-consed boolean circuit with Tseitin conversion to CNF.
//!
//! The translation from relational logic to SAT goes through this layer:
//! every entry of a relation's boolean matrix is a gate, relational
//! operators combine gates, and the final formula gate is converted to CNF
//! for the CDCL solver. Structural hashing and constant folding keep the
//! circuit (and hence the CNF) small.

use std::collections::HashMap;

use satsolver::{Lit, Solver, Var};

/// A handle to a gate in a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Gate {
    False,
    True,
    /// A free input, identified by a dense input index.
    Input(u32),
    Not(GateId),
    And(GateId, GateId),
    Or(GateId, GateId),
}

/// A boolean circuit builder with structural hashing.
#[derive(Debug, Default)]
pub struct Circuit {
    gates: Vec<Gate>,
    dedup: HashMap<Gate, GateId>,
    num_inputs: u32,
    input_gates: Vec<GateId>,
}

impl Circuit {
    /// Creates a circuit containing only the constants.
    pub fn new() -> Circuit {
        let mut c = Circuit::default();
        c.intern(Gate::False);
        c.intern(Gate::True);
        c
    }

    /// The constant-false gate.
    pub fn fls(&self) -> GateId {
        GateId(0)
    }

    /// The constant-true gate.
    pub fn tru(&self) -> GateId {
        GateId(1)
    }

    /// Is this gate the constant false?
    pub fn is_false(&self, g: GateId) -> bool {
        g == self.fls()
    }

    /// Is this gate the constant true?
    pub fn is_true(&self, g: GateId) -> bool {
        g == self.tru()
    }

    /// Creates a fresh free input.
    pub fn input(&mut self) -> GateId {
        let idx = self.num_inputs;
        self.num_inputs += 1;
        // Inputs are distinct by index: intern always creates a new gate.
        let g = self.intern(Gate::Input(idx));
        self.input_gates.push(g);
        g
    }

    /// The gate of the `k`-th input (in creation order).
    pub fn input_gate(&self, k: u32) -> GateId {
        self.input_gates[k as usize]
    }

    /// Number of free inputs created.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs as usize
    }

    /// Total number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Negation, with folding.
    pub fn not(&mut self, a: GateId) -> GateId {
        if a == self.fls() {
            return self.tru();
        }
        if a == self.tru() {
            return self.fls();
        }
        if let Gate::Not(inner) = self.gates[a.index()] {
            return inner;
        }
        self.intern(Gate::Not(a))
    }

    /// Conjunction, with folding and operand normalization.
    pub fn and(&mut self, a: GateId, b: GateId) -> GateId {
        if a == self.fls() || b == self.fls() {
            return self.fls();
        }
        if a == self.tru() {
            return b;
        }
        if b == self.tru() {
            return a;
        }
        if a == b {
            return a;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        // a ∧ ¬a = false
        if self.gates[y.index()] == Gate::Not(x) || self.gates[x.index()] == Gate::Not(y) {
            return self.fls();
        }
        self.intern(Gate::And(x, y))
    }

    /// Disjunction, with folding and operand normalization.
    pub fn or(&mut self, a: GateId, b: GateId) -> GateId {
        if a == self.tru() || b == self.tru() {
            return self.tru();
        }
        if a == self.fls() {
            return b;
        }
        if b == self.fls() {
            return a;
        }
        if a == b {
            return a;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        if self.gates[y.index()] == Gate::Not(x) || self.gates[x.index()] == Gate::Not(y) {
            return self.tru();
        }
        self.intern(Gate::Or(x, y))
    }

    /// `a ⇒ b`.
    pub fn implies(&mut self, a: GateId, b: GateId) -> GateId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// `a ⇔ b`.
    pub fn iff(&mut self, a: GateId, b: GateId) -> GateId {
        let fwd = self.implies(a, b);
        let back = self.implies(b, a);
        self.and(fwd, back)
    }

    /// Balanced conjunction of many gates.
    pub fn and_all<I: IntoIterator<Item = GateId>>(&mut self, gates: I) -> GateId {
        let mut layer: Vec<GateId> = gates.into_iter().collect();
        if layer.is_empty() {
            return self.tru();
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.and(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Balanced disjunction of many gates.
    pub fn or_all<I: IntoIterator<Item = GateId>>(&mut self, gates: I) -> GateId {
        let mut layer: Vec<GateId> = gates.into_iter().collect();
        if layer.is_empty() {
            return self.fls();
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.or(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Evaluates gate `g` under an assignment of the inputs.
    pub fn eval(&self, g: GateId, inputs: &[bool]) -> bool {
        // Iterative evaluation over the (topologically ordered) gate array.
        let mut values = vec![false; g.index() + 1];
        for i in 0..=g.index() {
            values[i] = match self.gates[i] {
                Gate::False => false,
                Gate::True => true,
                Gate::Input(k) => inputs[k as usize],
                Gate::Not(a) => !values[a.index()],
                Gate::And(a, b) => values[a.index()] && values[b.index()],
                Gate::Or(a, b) => values[a.index()] || values[b.index()],
            };
        }
        values[g.index()]
    }

    /// Tseitin-encodes the circuit into `solver`, asserting `root` true.
    ///
    /// Returns the mapping from input index to SAT variable so the caller
    /// can decode models. Only the cone of influence of `root` is encoded.
    pub fn to_solver(&self, root: GateId, solver: &mut Solver) -> HashMap<u32, Var> {
        let mut encoder = CircuitEncoder::new();
        let root_lit = encoder.encode(self, root, solver);
        solver.add_clause(&[root_lit]);
        encoder.input_vars
    }

    /// Collects the cone of influence of `roots`: a gate-indexed
    /// membership mask.
    fn cone(&self, roots: &[GateId]) -> Vec<bool> {
        let mut needed = vec![false; self.gates.len()];
        let mut stack: Vec<GateId> = roots.to_vec();
        while let Some(g) = stack.pop() {
            if needed[g.index()] {
                continue;
            }
            needed[g.index()] = true;
            match self.gates[g.index()] {
                Gate::Not(a) => stack.push(a),
                Gate::And(a, b) | Gate::Or(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                _ => {}
            }
        }
        needed
    }

    fn intern(&mut self, gate: Gate) -> GateId {
        if let Gate::Input(_) = gate {
            let id = GateId(self.gates.len() as u32);
            self.gates.push(gate);
            return id;
        }
        if let Some(&id) = self.dedup.get(&gate) {
            return id;
        }
        let id = GateId(self.gates.len() as u32);
        self.gates.push(gate);
        self.dedup.insert(gate, id);
        id
    }
}

/// An incremental Tseitin encoder: one growing [`Circuit`] feeding one
/// long-lived [`Solver`] across many queries.
///
/// Each [`CircuitEncoder::encode`] call emits defining clauses only for
/// the gates in the root's cone of influence that have not been encoded
/// by an earlier call; thanks to the circuit's structural hashing,
/// subcircuits shared between queries (relation matrices, closure
/// squaring chains, axiom bodies) therefore hit the cache and cost
/// nothing. Unlike [`Circuit::to_solver`], `encode` does **not** assert
/// the root — the caller decides whether the returned literal becomes a
/// permanent unit clause or an activation-guarded implication.
///
/// An encoder is tied to the circuit/solver pair it was first used with;
/// mixing circuits or solvers produces nonsense encodings.
#[derive(Debug, Default)]
pub struct CircuitEncoder {
    /// Gate-indexed literal cache; `None` = not yet encoded.
    lits: Vec<Option<Lit>>,
    input_vars: HashMap<u32, Var>,
    gates_encoded: u64,
    cache_hits: u64,
    tseitin_clauses: u64,
}

impl CircuitEncoder {
    /// Creates an empty encoder.
    pub fn new() -> CircuitEncoder {
        CircuitEncoder::default()
    }

    /// Encodes the not-yet-encoded part of `root`'s cone into `solver`
    /// and returns the literal representing `root` (not asserted).
    pub fn encode(&mut self, circuit: &Circuit, root: GateId, solver: &mut Solver) -> Lit {
        if self.lits.len() < circuit.gates.len() {
            self.lits.resize(circuit.gates.len(), None);
        }
        // Cone of influence, stopping at already-encoded gates.
        let mut needed = vec![false; circuit.gates.len()];
        let mut stack = vec![root];
        while let Some(g) = stack.pop() {
            if needed[g.index()] {
                continue;
            }
            if self.lits[g.index()].is_some() {
                self.cache_hits += 1;
                continue;
            }
            needed[g.index()] = true;
            match circuit.gates[g.index()] {
                Gate::Not(a) => stack.push(a),
                Gate::And(a, b) | Gate::Or(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                _ => {}
            }
        }
        // Gate ids are topologically ordered (operands precede users), so
        // one pass in index order sees every operand before its gate.
        for (i, gate) in circuit.gates.iter().enumerate() {
            if !needed[i] {
                continue;
            }
            self.gates_encoded += 1;
            let lit = match *gate {
                Gate::False | Gate::True => {
                    // Encode constants as a variable frozen by a unit clause;
                    // the literal then correctly carries the constant value.
                    let v = solver.new_var();
                    let l = v.positive();
                    solver.add_clause(&[if matches!(gate, Gate::True) { l } else { !l }]);
                    self.tseitin_clauses += 1;
                    l
                }
                Gate::Input(k) => {
                    let v = solver.new_var();
                    self.input_vars.insert(k, v);
                    v.positive()
                }
                Gate::Not(a) => !self.lits[a.index()].expect("operand encoded first"),
                Gate::And(_, _) | Gate::Or(_, _) => solver.new_var().positive(),
            };
            self.lits[i] = Some(lit);
            // Emit defining clauses for composite gates.
            match *gate {
                Gate::And(a, b) => {
                    let (la, lb) = (
                        self.lits[a.index()].expect("topological order"),
                        self.lits[b.index()].expect("topological order"),
                    );
                    solver.add_clause(&[!lit, la]);
                    solver.add_clause(&[!lit, lb]);
                    solver.add_clause(&[lit, !la, !lb]);
                    self.tseitin_clauses += 3;
                }
                Gate::Or(a, b) => {
                    let (la, lb) = (
                        self.lits[a.index()].expect("topological order"),
                        self.lits[b.index()].expect("topological order"),
                    );
                    solver.add_clause(&[!lit, la, lb]);
                    solver.add_clause(&[lit, !la]);
                    solver.add_clause(&[lit, !lb]);
                    self.tseitin_clauses += 3;
                }
                _ => {}
            }
        }
        self.lits[root.index()].expect("root encoded")
    }

    /// The SAT variable carrying input `k`, if its gate has been encoded.
    pub fn input_var(&self, k: u32) -> Option<Var> {
        self.input_vars.get(&k).copied()
    }

    /// Input-index → SAT-variable mapping for every input encoded so far.
    pub fn input_vars(&self) -> &HashMap<u32, Var> {
        &self.input_vars
    }

    /// The encoded SAT variables of all inputs in the cones of `roots`,
    /// in input-index order. Every root must have been encoded already.
    pub fn cone_input_vars(&self, circuit: &Circuit, roots: &[GateId]) -> Vec<Var> {
        let needed = circuit.cone(roots);
        let mut ks: Vec<u32> = circuit
            .gates
            .iter()
            .enumerate()
            .filter_map(|(i, g)| match g {
                Gate::Input(k) if needed[i] => Some(*k),
                _ => None,
            })
            .collect();
        ks.sort_unstable();
        ks.iter().map(|k| self.input_vars[k]).collect()
    }

    /// Total gates whose defining clauses this encoder has emitted.
    pub fn gates_encoded(&self) -> u64 {
        self.gates_encoded
    }

    /// Gates found already encoded during later `encode` calls — work a
    /// scratch translation would have repeated.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Total Tseitin defining clauses this encoder has added to its
    /// solver (three per binary gate, one per constant; `Not` gates are
    /// literal negations and cost nothing).
    pub fn tseitin_clauses(&self) -> u64 {
        self.tseitin_clauses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satsolver::SolveResult;

    #[test]
    fn constant_folding() {
        let mut c = Circuit::new();
        let x = c.input();
        let t = c.tru();
        let f = c.fls();
        assert_eq!(c.and(x, t), x);
        assert_eq!(c.and(x, f), f);
        assert_eq!(c.or(x, f), x);
        assert_eq!(c.or(x, t), t);
        let nx = c.not(x);
        assert_eq!(c.not(nx), x);
        assert_eq!(c.and(x, nx), f);
        assert_eq!(c.or(x, nx), t);
    }

    #[test]
    fn structural_hashing_dedupes() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let a1 = c.and(x, y);
        let a2 = c.and(y, x);
        assert_eq!(a1, a2);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let nx = c.not(x);
        let g = c.or(nx, y); // x => y
        assert!(c.eval(g, &[false, false]));
        assert!(c.eval(g, &[false, true]));
        assert!(!c.eval(g, &[true, false]));
        assert!(c.eval(g, &[true, true]));
    }

    #[test]
    fn tseitin_sat_agrees_with_eval() {
        // g = (x ∧ ¬y) ∨ (¬x ∧ y)  (xor)
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let ny = c.not(y);
        let nx = c.not(x);
        let l = c.and(x, ny);
        let r = c.and(nx, y);
        let g = c.or(l, r);

        let mut solver = Solver::new();
        let inputs = c.to_solver(g, &mut solver);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let vx = solver.model_value(inputs[&0]).unwrap();
        let vy = solver.model_value(inputs[&1]).unwrap();
        assert!(vx != vy, "xor model must differ");
        assert!(c.eval(g, &[vx, vy]));
    }

    #[test]
    fn tseitin_unsat_for_contradiction() {
        let mut c = Circuit::new();
        let x = c.input();
        let nx = c.not(x);
        let g = c.and(x, nx);
        let mut solver = Solver::new();
        let _ = c.to_solver(g, &mut solver);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn incremental_encoder_reuses_shared_cone() {
        // Two queries sharing the subcircuit (x ∧ y): the second encode
        // emits only the new Or gate.
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let z = c.input();
        let shared = c.and(x, y);
        let q1 = c.and(shared, z);
        let nz = c.not(z);
        let q2 = c.or(shared, nz);

        let mut solver = Solver::new();
        let mut enc = CircuitEncoder::new();
        let l1 = enc.encode(&c, q1, &mut solver);
        let after_q1 = enc.gates_encoded();
        let l2 = enc.encode(&c, q2, &mut solver);
        assert!(enc.cache_hits() > 0, "shared gate not cached");
        assert_eq!(
            enc.gates_encoded() - after_q1,
            2,
            "second query re-encoded more than Or + Not"
        );

        // Activation literals dispatch each query independently.
        let a1 = solver.new_var().positive();
        let a2 = solver.new_var().positive();
        solver.add_clause(&[!a1, l1]);
        solver.add_clause(&[!a2, l2]);
        assert_eq!(solver.solve_with_assumptions(&[a1]), SolveResult::Sat);
        let vx = enc.input_var(0).unwrap();
        let vz = enc.input_var(2).unwrap();
        assert_eq!(solver.model_value(vx), Some(true));
        assert_eq!(solver.model_value(vz), Some(true));
        assert_eq!(solver.solve_with_assumptions(&[a2]), SolveResult::Sat);
    }

    #[test]
    fn cone_input_vars_cover_both_roots() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let _unused = c.input();
        let g = c.or(x, y);
        let mut solver = Solver::new();
        let mut enc = CircuitEncoder::new();
        let _ = enc.encode(&c, g, &mut solver);
        let vars = enc.cone_input_vars(&c, &[g]);
        assert_eq!(vars.len(), 2, "only inputs in the cone are collected");
    }

    #[test]
    fn and_or_all_balance() {
        let mut c = Circuit::new();
        let xs: Vec<GateId> = (0..9).map(|_| c.input()).collect();
        let all = c.and_all(xs.iter().copied());
        let any = c.or_all(xs.iter().copied());
        assert!(c.eval(all, &[true; 9]));
        assert!(!c.eval(
            all,
            &[true, true, false, true, true, true, true, true, true]
        ));
        assert!(!c.eval(any, &[false; 9]));
        let empty_and = c.and_all([]);
        let empty_or = c.or_all([]);
        assert!(c.is_true(empty_and));
        assert!(c.is_false(empty_or));
    }
}
