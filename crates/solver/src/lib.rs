//! A Kodkod-style bounded relational model finder.
//!
//! This crate plays the role of Alloy's Kodkod engine in the paper's
//! workflow: a [`Problem`] pairs a relational [`relational::Formula`] with
//! per-relation [`relational::Bounds`] over a finite universe; the
//! [`ModelFinder`] translates it into a boolean circuit (relations as
//! matrices of gates), Tseitin-encodes the circuit into CNF, discharges it
//! to the from-scratch CDCL solver in `ptxmm-satsolver`, and decodes any
//! model back into a relational [`relational::Instance`].
//!
//! Features mirroring Kodkod:
//!
//! * sparse gate matrices with constant folding and structural hashing,
//! * transitive closure by iterative squaring (naive unrolling available
//!   for ablation),
//! * exact lower bounds contribute no SAT variables,
//! * lex-leader symmetry breaking over interchangeable atoms.
//!
//! See the crate-level example on [`ModelFinder`].

#![warn(missing_docs)]

pub mod circuit;
pub mod finder;
pub mod harness;
pub mod session;
pub mod symmetry;
pub mod translate;

pub use finder::{CheckResult, ModelFinder, Options, Problem, Report, Verdict};
pub use harness::{HarnessOptions, Query, QueryCtx, QueryOutput, QueryRecord, SessionPool};
pub use obs;
pub use satsolver::{drat, hash, CancelToken, Interrupt, Lit, Proof, SolverStats};
pub use session::{Session, SessionStats};
pub use translate::{ClosureStrategy, IncrementalTranslator};
