//! The model finding driver: translate, solve, decode.

use std::time::{Duration, Instant};

use relational::{Bounds, Formula, Instance, Schema, TypeError};
use satsolver::{CancelToken, Interrupt, SolveResult, Solver, Var};

use crate::circuit::CircuitEncoder;
use crate::symmetry::{break_symmetries, formula_pins_atoms, symmetry_classes};
use crate::translate::{translate, ClosureStrategy};

/// A bounded relational satisfiability problem.
#[derive(Debug, Clone)]
pub struct Problem {
    /// The relation vocabulary.
    pub schema: Schema,
    /// Per-relation lower/upper bounds over a finite universe.
    pub bounds: Bounds,
    /// The formula to satisfy.
    pub formula: Formula,
}

/// Model finding options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// How to encode transitive closure.
    pub closure: ClosureStrategy,
    /// Whether to add lex-leader symmetry-breaking predicates.
    ///
    /// Sound for satisfiability checks but removes isomorphic models, so it
    /// must be disabled when enumerating all models.
    pub symmetry_breaking: bool,
    /// Optional conflict budget for the SAT solver.
    pub conflict_budget: Option<u64>,
    /// Optional propagation budget for the SAT solver.
    pub propagation_budget: Option<u64>,
    /// Optional wall-clock budget for the whole run (translation +
    /// solving), measured from the start of the `solve` call. On expiry
    /// the verdict is [`Verdict::Unknown`] and the [`Report`] records
    /// [`Interrupt::Deadline`].
    pub deadline: Option<Duration>,
    /// Optional cancellation token polled by the SAT solver, for stopping
    /// a run from another thread (see [`satsolver::CancelToken`]).
    pub cancel: Option<CancelToken>,
    /// Record a DRAT proof log while solving, returned in
    /// [`Report::proof`] (scratch runs) or kept on the session
    /// ([`crate::Session::proof`]). `Unsat` verdicts then carry an
    /// independently checkable certificate (see [`satsolver::drat`]).
    /// Off by default; roughly doubles clause bookkeeping cost.
    pub proof_logging: bool,
    /// Event tracer bracketing the translate/encode/solve phases and
    /// receiving the SAT solver's milestone events. The
    /// [`obs::trace::Tracer::disabled`] default records nothing.
    pub tracer: obs::trace::Tracer,
    /// Overrides the SAT solver's learnt-database reduction cadence
    /// (conflicts between sweeps; see
    /// [`satsolver::Solver::set_reduce_interval`]). `None` keeps the
    /// solver default, which is tuned for real workloads; tests and
    /// stress harnesses lower it to force sweeps on small instances.
    pub reduce_interval: Option<u64>,
}

impl Options {
    /// Options for a plain satisfiability check (symmetry breaking on).
    pub fn check() -> Options {
        Options {
            symmetry_breaking: true,
            ..Options::default()
        }
    }

    /// This configuration with a wall-clock budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Options {
        self.deadline = Some(deadline);
        self
    }

    /// This configuration with a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Options {
        self.cancel = Some(token);
        self
    }

    /// This configuration with DRAT proof logging turned on.
    pub fn with_proof_logging(mut self) -> Options {
        self.proof_logging = true;
        self
    }

    /// This configuration with an event tracer.
    pub fn with_tracer(mut self, tracer: obs::trace::Tracer) -> Options {
        self.tracer = tracer;
        self
    }

    /// This configuration with an explicit learnt-database reduction
    /// cadence (conflicts between sweeps).
    pub fn with_reduce_interval(mut self, interval: u64) -> Options {
        self.reduce_interval = Some(interval);
        self
    }
}

/// The verdict of a model finding run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A satisfying instance exists.
    Sat(Instance),
    /// No satisfying instance exists within the bounds.
    Unsat,
    /// The conflict budget ran out.
    Unknown,
}

impl Verdict {
    /// The instance, if satisfiable.
    pub fn instance(&self) -> Option<&Instance> {
        match self {
            Verdict::Sat(i) => Some(i),
            _ => None,
        }
    }

    /// True iff the verdict is [`Verdict::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, Verdict::Unsat)
    }
}

/// Statistics about one model finding run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Gates in the translated circuit.
    pub gates: usize,
    /// Free boolean inputs (relation tuples not fixed by bounds).
    pub inputs: usize,
    /// Variables in the CNF handed to the SAT solver.
    pub sat_vars: usize,
    /// Clauses in the CNF.
    pub sat_clauses: usize,
    /// Sparse matrix cells materialized during translation (for a
    /// session query: cells this query added).
    pub matrix_cells: u64,
    /// Tseitin defining clauses emitted while encoding (for a session
    /// query: clauses this query added).
    pub tseitin_clauses: u64,
    /// Number of symmetry classes broken.
    pub symmetry_classes: usize,
    /// True when [`Options::symmetry_breaking`] was requested but the
    /// formula pins atoms by identity (see
    /// [`crate::symmetry::formula_pins_atoms`]), so the predicates were
    /// skipped to preserve soundness.
    pub symmetry_downgraded: bool,
    /// Time spent translating to CNF.
    pub translate_time: Duration,
    /// Time spent in the SAT solver.
    pub solve_time: Duration,
    /// SAT solver counters.
    pub solver_stats: satsolver::SolverStats,
    /// Gates found already encoded by an earlier query on the same
    /// incremental session (0 for a scratch run).
    pub gate_cache_hits: u64,
    /// Why the run stopped early, when the verdict is
    /// [`Verdict::Unknown`]. `None` for a completed run.
    pub interrupted: Option<Interrupt>,
    /// The DRAT proof recorded for this run when
    /// [`Options::proof_logging`] is set (scratch runs only; session
    /// proofs accumulate on the session instead). An `Unsat` verdict is
    /// certified by `satsolver::drat::certify_unsat(proof, &[])`.
    pub proof: Option<satsolver::Proof>,
}

impl Report {
    /// Records this report's counters, timings, and size histograms
    /// into an observability registry under the workspace's canonical
    /// stat names (`circuit.*`, `sat.*`, `solver.*`, `time.*`). No-op
    /// for a disabled registry. Counter values are deterministic for a
    /// fixed problem; the `time.*` entries are wall clock and excluded
    /// from exact comparisons by the JSONL schema.
    pub fn record_obs(&self, reg: &obs::Registry) {
        if !reg.enabled() {
            return;
        }
        reg.add("circuit.gates", self.gates as u64);
        reg.add("circuit.inputs", self.inputs as u64);
        reg.add("circuit.matrix_cells", self.matrix_cells);
        reg.add("circuit.gate_cache_hits", self.gate_cache_hits);
        reg.add("sat.vars", self.sat_vars as u64);
        reg.add("sat.clauses", self.sat_clauses as u64);
        reg.add("sat.tseitin_clauses", self.tseitin_clauses);
        reg.add("sym.classes", self.symmetry_classes as u64);
        if self.symmetry_downgraded {
            reg.add("sym.downgraded", 1);
        }
        let s = &self.solver_stats;
        reg.add("solver.propagations", s.propagations);
        reg.add("solver.binary_propagations", s.binary_propagations);
        reg.add("solver.conflicts", s.conflicts);
        reg.add("solver.decisions", s.decisions);
        reg.add("solver.restarts", s.restarts);
        reg.add("solver.learnt_clauses", s.learnt_clauses);
        reg.add("solver.learnt_literals", s.learnt_literals);
        reg.add("solver.lbd_sum", s.lbd_sum);
        reg.add("solver.lbd_glue_learnts", s.lbd_glue_learnts);
        reg.add("solver.reduce_sweeps", s.reduce_sweeps);
        reg.add("solver.deleted_clauses", s.deleted_clauses);
        if let Some(proof) = &self.proof {
            reg.add("proof.drat_bytes", proof.drat_bytes());
        }
        reg.observe("hist.sat_clauses", self.sat_clauses as u64);
        reg.record_duration("time.translate", self.translate_time);
        reg.record_duration("time.solve", self.solve_time);
    }
}

/// A model finder for bounded relational problems.
///
/// # Examples
///
/// Find a non-trivial acyclic relation:
///
/// ```
/// use relational::{Schema, Bounds, patterns};
/// use relational::schema::rel;
/// use modelfinder::{ModelFinder, Problem, Options};
///
/// let mut schema = Schema::new();
/// let r = schema.relation("r", 2);
/// let bounds = Bounds::new(&schema, 3);
/// let formula = patterns::acyclic(&rel(r)).and(&rel(r).some());
/// let problem = Problem { schema, bounds, formula };
///
/// let (verdict, _report) = ModelFinder::new(Options::check()).solve(&problem)?;
/// let instance = verdict.instance().expect("satisfiable");
/// assert!(!instance.get(r).is_empty());
/// # Ok::<(), relational::TypeError>(())
/// ```
#[derive(Debug, Default)]
pub struct ModelFinder {
    options: Options,
}

impl ModelFinder {
    /// Creates a finder with the given options.
    pub fn new(options: Options) -> ModelFinder {
        ModelFinder { options }
    }

    /// Solves the problem, returning the verdict and a run report.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the formula violates arity discipline.
    pub fn solve(&self, problem: &Problem) -> Result<(Verdict, Report), TypeError> {
        let t0 = Instant::now();
        let deadline = self.options.deadline.map(|d| t0 + d);
        let trace = &self.options.tracer;
        let translate_span = trace.span("translate");
        let mut translation = translate(
            &problem.schema,
            &problem.bounds,
            &problem.formula,
            self.options.closure,
        )?;
        let mut root = translation.root;
        let mut report = Report::default();
        if self.options.symmetry_breaking {
            if formula_pins_atoms(&problem.formula) {
                // Bounds-only symmetry breaking is unsound for formulas
                // that pin atoms by identity: downgrade to a plain search
                // rather than risk a wrong Unsat.
                report.symmetry_downgraded = true;
                warn_symmetry_downgrade();
            } else {
                let classes = symmetry_classes(&problem.schema, &problem.bounds);
                report.symmetry_classes = classes.len();
                let sym = break_symmetries(
                    &problem.schema,
                    &problem.bounds,
                    &mut translation.circuit,
                    &translation.rel_inputs,
                    &classes,
                );
                root = translation.circuit.and(root, sym);
            }
        }
        drop(translate_span);
        let mut solver = Solver::new();
        if self.options.proof_logging {
            solver.enable_proof_logging();
        }
        solver.set_conflict_budget(self.options.conflict_budget);
        solver.set_propagation_budget(self.options.propagation_budget);
        solver.set_deadline(deadline);
        solver.set_cancel_token(self.options.cancel.clone());
        solver.set_tracer(trace);
        if let Some(interval) = self.options.reduce_interval {
            solver.set_reduce_interval(interval);
        }
        let encode_span = trace.span("encode");
        let mut encoder = CircuitEncoder::new();
        let root_lit = encoder.encode(&translation.circuit, root, &mut solver);
        solver.add_clause(&[root_lit]);
        drop(encode_span);
        let input_vars = encoder.input_vars();
        report.gates = translation.circuit.num_gates();
        report.inputs = translation.circuit.num_inputs();
        report.sat_vars = solver.num_vars();
        report.sat_clauses = solver.num_clauses();
        report.matrix_cells = translation.matrix_cells;
        report.tseitin_clauses = encoder.tseitin_clauses();
        report.translate_time = t0.elapsed();

        // The deadline covers translation too; if it already passed (or
        // the caller cancelled during translation), skip the search but
        // still return an accurate report of the work done so far.
        let expired = deadline.is_some_and(|d| Instant::now() >= d);
        let cancelled = self
            .options
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled);
        if expired || cancelled {
            report.interrupted = Some(if cancelled {
                Interrupt::Cancelled
            } else {
                Interrupt::Deadline
            });
            report.proof = solver.take_proof();
            return Ok((Verdict::Unknown, report));
        }

        let t1 = Instant::now();
        let solve_span = trace.span("solve");
        let result = solver.solve();
        drop(solve_span);
        report.solve_time = t1.elapsed();
        report.solver_stats = solver.stats();

        let verdict = match result {
            SolveResult::Unsat => Verdict::Unsat,
            SolveResult::Unknown(reason) => {
                report.interrupted = Some(reason);
                Verdict::Unknown
            }
            SolveResult::Sat => Verdict::Sat(decode(
                &problem.schema,
                &problem.bounds,
                &translation.rel_inputs,
                input_vars,
                &solver,
            )),
        };
        report.proof = solver.take_proof();
        Ok((verdict, report))
    }

    /// Enumerates satisfying instances, invoking `visit` for each, up to
    /// `limit`. Returns the number of instances found.
    ///
    /// Symmetry breaking is forcibly disabled so the enumeration is
    /// complete.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the formula violates arity discipline.
    pub fn enumerate<F: FnMut(&Instance)>(
        &self,
        problem: &Problem,
        limit: usize,
        mut visit: F,
    ) -> Result<usize, TypeError> {
        let translation = translate(
            &problem.schema,
            &problem.bounds,
            &problem.formula,
            self.options.closure,
        )?;
        let mut solver = Solver::new();
        solver.set_conflict_budget(self.options.conflict_budget);
        solver.set_propagation_budget(self.options.propagation_budget);
        solver.set_deadline(self.options.deadline.map(|d| Instant::now() + d));
        solver.set_cancel_token(self.options.cancel.clone());
        if let Some(interval) = self.options.reduce_interval {
            solver.set_reduce_interval(interval);
        }
        let input_vars = translation.circuit.to_solver(translation.root, &mut solver);
        let all_inputs: Vec<Var> = input_vars.values().copied().collect();
        let mut count = 0;
        while count < limit && solver.solve() == SolveResult::Sat {
            let inst = decode(
                &problem.schema,
                &problem.bounds,
                &translation.rel_inputs,
                &input_vars,
                &solver,
            );
            visit(&inst);
            count += 1;
            if all_inputs.is_empty() || !solver.block_model(&all_inputs) {
                break;
            }
        }
        Ok(count)
    }
}

/// The result of an Alloy-style `check`: either the assertion holds
/// within the bounds, or a counterexample instance is produced.
#[derive(Debug, Clone)]
pub enum CheckResult {
    /// No counterexample exists within the bounds.
    Valid,
    /// The assertion fails on this instance.
    Counterexample(Instance),
    /// The conflict budget ran out before a verdict.
    Unknown,
}

impl CheckResult {
    /// True iff the assertion held within bounds.
    pub fn is_valid(&self) -> bool {
        matches!(self, CheckResult::Valid)
    }
}

impl ModelFinder {
    /// Alloy's `check` idiom: verify that `assumptions ⇒ assertion` holds
    /// for every instance within the bounds, by searching for an instance
    /// satisfying `assumptions ∧ ¬assertion`.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if either formula violates arity
    /// discipline.
    pub fn check(
        &self,
        schema: &Schema,
        bounds: &Bounds,
        assumptions: &Formula,
        assertion: &Formula,
    ) -> Result<(CheckResult, Report), TypeError> {
        let problem = Problem {
            schema: schema.clone(),
            bounds: bounds.clone(),
            formula: assumptions.and(&assertion.not()),
        };
        let (verdict, report) = self.solve(&problem)?;
        let result = match verdict {
            Verdict::Unsat => CheckResult::Valid,
            Verdict::Sat(instance) => CheckResult::Counterexample(instance),
            Verdict::Unknown => CheckResult::Unknown,
        };
        Ok((result, report))
    }
}

/// Warns (once per process) that a symmetry-breaking request was
/// downgraded because the formula pins atoms. The downgrade itself is
/// also visible programmatically via [`Report::symmetry_downgraded`]
/// and the `sym.downgraded` stats counter.
pub(crate) fn warn_symmetry_downgrade() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: symmetry breaking downgraded: the formula pins atoms by \
             identity (non-empty constant expression), which lex-leader \
             predicates over bounds symmetries would make unsound; solving \
             without symmetry breaking"
        );
    });
}

/// Reads a satisfying assignment back into a relational [`Instance`].
pub(crate) fn decode(
    schema: &Schema,
    bounds: &Bounds,
    rel_inputs: &[std::collections::BTreeMap<relational::Tuple, u32>],
    input_vars: &std::collections::HashMap<u32, Var>,
    solver: &Solver,
) -> Instance {
    let mut inst = Instance::empty(schema, bounds.universe_size());
    for (id, d) in schema.iter() {
        let mut value = bounds.lower(id).clone();
        let _ = d;
        for (tuple, input_idx) in &rel_inputs[id.index()] {
            // Inputs outside the root's cone of influence have no SAT
            // variable; they are unconstrained, so leave them absent.
            if let Some(var) = input_vars.get(input_idx) {
                if solver.model_value(*var) == Some(true) {
                    value.insert(tuple.clone());
                }
            }
        }
        inst.set(id, value);
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::patterns;
    use relational::schema::rel;
    use relational::{eval_formula, TupleSet};

    fn simple_problem() -> (Problem, relational::RelId) {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 3);
        let formula = patterns::acyclic(&rel(r)).and(&rel(r).some());
        (
            Problem {
                schema,
                bounds,
                formula,
            },
            r,
        )
    }

    #[test]
    fn finds_satisfying_instance() {
        let (problem, r) = simple_problem();
        let (verdict, report) = ModelFinder::new(Options::default())
            .solve(&problem)
            .unwrap();
        let inst = verdict.instance().expect("sat");
        assert!(!inst.get(r).is_empty());
        assert!(eval_formula(&problem.schema, inst, &problem.formula).unwrap());
        assert!(report.sat_vars > 0);
    }

    #[test]
    fn unsat_when_formula_contradictory() {
        let (mut problem, _) = simple_problem();
        // r must be non-empty, acyclic, and empty: contradiction.
        let r = problem.schema.find("r").unwrap();
        problem.formula = problem.formula.and(&rel(r).no());
        let (verdict, _) = ModelFinder::new(Options::default())
            .solve(&problem)
            .unwrap();
        assert!(verdict.is_unsat());
    }

    #[test]
    fn symmetry_breaking_preserves_satisfiability() {
        let (problem, _) = simple_problem();
        let (v1, _) = ModelFinder::new(Options::default())
            .solve(&problem)
            .unwrap();
        let (v2, r2) = ModelFinder::new(Options::check()).solve(&problem).unwrap();
        assert!(v1.instance().is_some());
        assert!(v2.instance().is_some());
        assert!(r2.symmetry_classes >= 1);
        // The symmetric model must still satisfy the formula.
        assert!(eval_formula(&problem.schema, v2.instance().unwrap(), &problem.formula).unwrap());
    }

    #[test]
    fn enumeration_matches_hand_count() {
        // Relations over a 2-atom universe with `one r`: exactly 4 models.
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 2);
        let formula = rel(r).one();
        let problem = Problem {
            schema,
            bounds,
            formula,
        };
        let count = ModelFinder::new(Options::default())
            .enumerate(&problem, 100, |inst| {
                assert_eq!(inst.get(r).len(), 1);
            })
            .unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn exact_bounds_need_no_search() {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let mut bounds = Bounds::new(&schema, 2);
        bounds.bound_exact(r, TupleSet::from_pairs([(0, 1)]));
        let formula = rel(r).some();
        let problem = Problem {
            schema,
            bounds,
            formula,
        };
        let (verdict, report) = ModelFinder::new(Options::default())
            .solve(&problem)
            .unwrap();
        assert!(verdict.instance().is_some());
        assert_eq!(report.inputs, 0);
    }

    #[test]
    fn closure_strategies_agree() {
        let (problem, _) = simple_problem();
        for strategy in [
            ClosureStrategy::IterativeSquaring,
            ClosureStrategy::Unrolled,
        ] {
            let opts = Options {
                closure: strategy,
                ..Options::default()
            };
            let (verdict, _) = ModelFinder::new(opts).solve(&problem).unwrap();
            assert!(verdict.instance().is_some(), "{strategy:?}");
        }
    }
}

#[cfg(test)]
mod check_tests {
    use super::*;
    use relational::patterns;
    use relational::schema::rel;

    #[test]
    fn check_valid_assertion() {
        // Assuming r is acyclic, r is irreflexive — valid at any bound.
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 3);
        let finder = ModelFinder::new(Options::check());
        let (result, _) = finder
            .check(
                &schema,
                &bounds,
                &patterns::acyclic(&rel(r)),
                &patterns::irreflexive(&rel(r)),
            )
            .unwrap();
        assert!(result.is_valid());
    }

    #[test]
    fn check_invalid_assertion_yields_counterexample() {
        // Assuming r is irreflexive, r is acyclic — false (2-cycles).
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 3);
        let finder = ModelFinder::new(Options::default());
        let (result, _) = finder
            .check(
                &schema,
                &bounds,
                &patterns::irreflexive(&rel(r)),
                &patterns::acyclic(&rel(r)),
            )
            .unwrap();
        match result {
            CheckResult::Counterexample(inst) => {
                let v = inst.get(r);
                assert!(!v.is_empty(), "counterexample must contain a cycle");
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }
}
