//! Incremental model finding sessions.
//!
//! A [`Session`] amortizes the fixed cost of a family of closely related
//! queries — the same (schema, bounds) universe, the same base formula
//! (well-formedness + axioms), but a different assertion or litmus
//! postcondition each time. Three layers persist across queries:
//!
//! 1. **Translation** ([`IncrementalTranslator`]): relation matrices are
//!    allocated once, and structural hashing dedups any subcircuit later
//!    queries share with earlier ones (closure squaring chains, join
//!    products, quantifier expansions).
//! 2. **Encoding** ([`CircuitEncoder`]): Tseitin clauses are emitted only
//!    for gates not already in the solver, so a query pays CNF cost only
//!    for its genuinely new subformula.
//! 3. **Search** ([`satsolver::Solver`]): one long-lived CDCL solver keeps
//!    learnt clauses, VSIDS activities, and saved phases. Each query's
//!    root is guarded by a fresh activation literal `act` via the clause
//!    `¬act ∨ root`; the query is solved with `act` assumed and retired
//!    afterwards with a permanent unit `¬act`, so its constraint can never
//!    leak into later queries.
//!
//! Verdicts are identical to per-query [`crate::ModelFinder`] runs over
//! `base ∧ query` (guaranteed by the `session_matches_scratch`
//! regression tests); only the work performed differs.

use std::time::{Duration, Instant};

use relational::{Bounds, Formula, Instance, Schema, TypeError};
use satsolver::{CancelToken, Interrupt, Lit, Proof, SolveResult, Solver, SolverStats};

use crate::circuit::{CircuitEncoder, GateId};
use crate::finder::{decode, CheckResult, Options, Report, Verdict};
use crate::symmetry::{break_symmetries, formula_pins_atoms, symmetry_classes};
use crate::translate::IncrementalTranslator;

/// Cumulative work counters for a session.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Queries dispatched (solve/check calls, enumerate counts once).
    pub queries: u64,
    /// Total time translating formulas to circuit gates.
    pub translate_time: Duration,
    /// Total time Tseitin-encoding new gates into the solver.
    pub encode_time: Duration,
    /// Total time inside the SAT solver.
    pub solve_time: Duration,
    /// Gates whose defining clauses were emitted.
    pub gates_encoded: u64,
    /// Gates found already encoded by an earlier query — translation work
    /// a scratch run would have repeated.
    pub gate_cache_hits: u64,
    /// Sparse matrix cells materialized by the session's translator.
    pub matrix_cells: u64,
    /// Tseitin defining clauses emitted by the session's encoder.
    pub tseitin_clauses: u64,
}

impl SessionStats {
    /// Records these cumulative counters and timings into an
    /// observability registry under `session.*`/`time.*` names. No-op
    /// for a disabled registry.
    pub fn record_obs(&self, reg: &obs::Registry) {
        if !reg.enabled() {
            return;
        }
        reg.add("session.queries", self.queries);
        reg.add("session.gates_encoded", self.gates_encoded);
        reg.add("session.gate_cache_hits", self.gate_cache_hits);
        reg.add("session.matrix_cells", self.matrix_cells);
        reg.add("session.tseitin_clauses", self.tseitin_clauses);
        reg.record_duration("time.session_translate", self.translate_time);
        reg.record_duration("time.session_encode", self.encode_time);
        reg.record_duration("time.session_solve", self.solve_time);
    }
}

/// An incremental model-finding session over one (schema, bounds, base
/// formula) triple.
///
/// # Examples
///
/// ```
/// use relational::{Schema, Bounds, patterns};
/// use relational::schema::rel;
/// use modelfinder::{Session, Options, Verdict};
///
/// let mut schema = Schema::new();
/// let r = schema.relation("r", 2);
/// let bounds = Bounds::new(&schema, 3);
/// let base = patterns::acyclic(&rel(r));
/// let mut session = Session::new(&schema, &bounds, &base, Options::default())?;
/// // Queries against the shared base, answered on one solver:
/// let (v1, _) = session.solve(&rel(r).some())?;
/// assert!(v1.instance().is_some());
/// let (v2, _) = session.solve(&rel(r).some().not())?;
/// assert!(v2.instance().is_some());
/// # Ok::<(), relational::TypeError>(())
/// ```
#[derive(Debug)]
pub struct Session {
    translator: IncrementalTranslator,
    encoder: CircuitEncoder,
    solver: Solver,
    base_root: GateId,
    options: Options,
    num_symmetry_classes: usize,
    /// True when symmetry breaking was requested but the base formula
    /// pins atoms, so the predicates were skipped (see
    /// [`formula_pins_atoms`]). Reported on every query's [`Report`].
    symmetry_downgraded: bool,
    stats: SessionStats,
    /// The assumption core of the most recent query, when it was `Unsat`.
    last_core: Option<Vec<Lit>>,
}

impl Session {
    /// Creates a session: translates and encodes `base` once, asserting
    /// it permanently in the solver.
    ///
    /// With [`Options::symmetry_breaking`] on, lex-leader predicates for
    /// the bounds' interchangeable-atom classes are asserted alongside the
    /// base. They are sound only for queries invariant under
    /// bound-respecting atom permutations — in particular, queries that
    /// pin individual atoms through `Expr::Const` may be misjudged, and
    /// [`Session::enumerate`] refuses to run (the predicates cannot be
    /// retracted). Use [`Options::default`] for such workloads.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if `base` violates arity discipline.
    pub fn new(
        schema: &Schema,
        bounds: &Bounds,
        base: &Formula,
        options: Options,
    ) -> Result<Session, TypeError> {
        let mut options = options;
        let mut stats = SessionStats::default();
        let t0 = Instant::now();
        let translate_span = options.tracer.span("translate");
        let mut translator = IncrementalTranslator::new(schema, bounds, options.closure);
        let mut base_root = translator.formula(base)?;
        let mut num_symmetry_classes = 0;
        let mut symmetry_downgraded = false;
        if options.symmetry_breaking && formula_pins_atoms(base) {
            // The base pins atoms, so lex-leader predicates over bounds
            // symmetries would be unsound; run the whole session without
            // them (which also re-permits enumeration).
            options.symmetry_breaking = false;
            symmetry_downgraded = true;
            crate::finder::warn_symmetry_downgrade();
        }
        if options.symmetry_breaking {
            let classes = symmetry_classes(schema, bounds);
            num_symmetry_classes = classes.len();
            let (circuit, rel_inputs) = translator.parts_mut();
            let sym = break_symmetries(schema, bounds, circuit, rel_inputs, &classes);
            base_root = circuit.and(base_root, sym);
        }
        drop(translate_span);
        stats.translate_time += t0.elapsed();

        let t1 = Instant::now();
        let mut solver = Solver::new();
        if options.proof_logging {
            solver.enable_proof_logging();
        }
        solver.set_tracer(&options.tracer);
        if let Some(interval) = options.reduce_interval {
            solver.set_reduce_interval(interval);
        }
        let encode_span = options.tracer.span("encode");
        let mut encoder = CircuitEncoder::new();
        let base_lit = encoder.encode(translator.circuit(), base_root, &mut solver);
        solver.add_clause(&[base_lit]);
        drop(encode_span);
        stats.encode_time += t1.elapsed();

        Ok(Session {
            translator,
            encoder,
            solver,
            base_root,
            options,
            num_symmetry_classes,
            symmetry_downgraded,
            stats,
            last_core: None,
        })
    }

    /// Replaces the per-query wall-clock budget.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.options.deadline = deadline;
    }

    /// Replaces the per-query conflict budget.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.options.conflict_budget = budget;
    }

    /// Replaces the per-query cancellation token.
    pub fn set_cancel(&mut self, token: Option<CancelToken>) {
        self.options.cancel = token;
    }

    /// Replaces the session's event tracer: subsequent queries emit
    /// translate/encode/solve spans and the solver's milestone events
    /// into it.
    pub fn set_tracer(&mut self, tracer: obs::trace::Tracer) {
        self.solver.set_tracer(&tracer);
        self.options.tracer = tracer;
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            gates_encoded: self.encoder.gates_encoded(),
            gate_cache_hits: self.encoder.cache_hits(),
            matrix_cells: self.translator.matrix_cells(),
            tseitin_clauses: self.encoder.tseitin_clauses(),
            ..self.stats
        }
    }

    /// Searches for an instance satisfying `base ∧ formula`.
    ///
    /// Equivalent to [`crate::ModelFinder::solve`] on the conjoined
    /// problem, but incremental: only `formula`'s new subcircuit is
    /// translated and encoded, and the solver resumes with everything it
    /// learnt from earlier queries.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if `formula` violates arity discipline.
    pub fn solve(&mut self, formula: &Formula) -> Result<(Verdict, Report), TypeError> {
        assert!(
            !(self.options.symmetry_breaking && formula_pins_atoms(formula)),
            "query pins atoms by identity, but this session's permanently \
             asserted symmetry-breaking predicates would make the verdict \
             unsound; create the session with Options::default()"
        );
        let t0 = Instant::now();
        let deadline = self.options.deadline.map(|d| t0 + d);
        self.stats.queries += 1;

        let cells_before = self.translator.matrix_cells();
        let translate_span = self.options.tracer.span("translate");
        let query_root = self.translator.formula(formula)?;
        drop(translate_span);
        let translate_time = t0.elapsed();
        self.stats.translate_time += translate_time;

        let t1 = Instant::now();
        let hits_before = self.encoder.cache_hits();
        let tseitin_before = self.encoder.tseitin_clauses();
        let encode_span = self.options.tracer.span("encode");
        let root_lit = self
            .encoder
            .encode(self.translator.circuit(), query_root, &mut self.solver);
        let act = self.solver.new_var();
        self.solver.add_clause(&[act.negative(), root_lit]);
        drop(encode_span);
        self.stats.encode_time += t1.elapsed();

        let mut report = Report {
            gates: self.translator.circuit().num_gates(),
            inputs: self.translator.circuit().num_inputs(),
            sat_vars: self.solver.num_vars(),
            sat_clauses: self.solver.num_clauses(),
            symmetry_classes: self.num_symmetry_classes,
            symmetry_downgraded: self.symmetry_downgraded,
            translate_time,
            gate_cache_hits: self.encoder.cache_hits() - hits_before,
            matrix_cells: self.translator.matrix_cells() - cells_before,
            tseitin_clauses: self.encoder.tseitin_clauses() - tseitin_before,
            ..Report::default()
        };

        self.solver
            .set_conflict_budget(self.options.conflict_budget);
        self.solver
            .set_propagation_budget(self.options.propagation_budget);
        self.solver.set_deadline(deadline);
        self.solver.set_cancel_token(self.options.cancel.clone());

        // The deadline covers translation and encoding too.
        let expired = deadline.is_some_and(|d| Instant::now() >= d);
        let cancelled = self
            .options
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled);
        if expired || cancelled {
            report.interrupted = Some(if cancelled {
                Interrupt::Cancelled
            } else {
                Interrupt::Deadline
            });
            self.last_core = None;
            self.retire(act.negative());
            return Ok((Verdict::Unknown, report));
        }

        let t2 = Instant::now();
        let stats_before = self.solver.stats();
        let solve_span = self.options.tracer.span("solve");
        let result = self.solver.solve_with_assumptions(&[act.positive()]);
        drop(solve_span);
        report.solve_time = t2.elapsed();
        self.stats.solve_time += report.solve_time;
        report.solver_stats = stats_delta(stats_before, self.solver.stats());

        let verdict = match result {
            SolveResult::Unsat => {
                self.last_core = Some(self.solver.final_conflict().to_vec());
                Verdict::Unsat
            }
            SolveResult::Unknown(reason) => {
                self.last_core = None;
                report.interrupted = Some(reason);
                Verdict::Unknown
            }
            SolveResult::Sat => {
                self.last_core = None;
                Verdict::Sat(decode(
                    self.translator.schema(),
                    self.translator.bounds(),
                    self.translator.rel_inputs(),
                    self.encoder.input_vars(),
                    &self.solver,
                ))
            }
        };
        self.retire(act.negative());
        Ok((verdict, report))
    }

    /// Alloy's `check` idiom against the session base: searches for a
    /// counterexample satisfying `base ∧ ¬assertion`.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if `assertion` violates arity discipline.
    pub fn check(&mut self, assertion: &Formula) -> Result<(CheckResult, Report), TypeError> {
        let (verdict, report) = self.solve(&assertion.not())?;
        let result = match verdict {
            Verdict::Unsat => CheckResult::Valid,
            Verdict::Sat(instance) => CheckResult::Counterexample(instance),
            Verdict::Unknown => CheckResult::Unknown,
        };
        Ok((result, report))
    }

    /// Enumerates instances satisfying `base ∧ formula`, invoking `visit`
    /// for each, up to `limit`. Returns the number found.
    ///
    /// Blocking clauses carry the query's activation literal, so they
    /// retire together with the query instead of constraining later ones.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if `formula` violates arity discipline.
    ///
    /// # Panics
    ///
    /// Panics if the session was created with symmetry breaking: its
    /// predicates are permanently asserted and would make the enumeration
    /// incomplete.
    pub fn enumerate<F: FnMut(&Instance)>(
        &mut self,
        formula: &Formula,
        limit: usize,
        mut visit: F,
    ) -> Result<usize, TypeError> {
        assert!(
            !self.options.symmetry_breaking,
            "enumeration on a symmetry-breaking session is incomplete; \
             create the session with Options::default()"
        );
        self.stats.queries += 1;
        self.last_core = None;
        let t0 = Instant::now();
        let query_root = self.translator.formula(formula)?;
        self.stats.translate_time += t0.elapsed();

        let t1 = Instant::now();
        let root_lit = self
            .encoder
            .encode(self.translator.circuit(), query_root, &mut self.solver);
        let act = self.solver.new_var();
        self.solver.add_clause(&[act.negative(), root_lit]);
        // Enumeration is projected onto the inputs both roots can see —
        // the same set a scratch run over `base ∧ formula` would use.
        let block_vars = self
            .encoder
            .cone_input_vars(self.translator.circuit(), &[self.base_root, query_root]);
        self.stats.encode_time += t1.elapsed();

        self.solver
            .set_conflict_budget(self.options.conflict_budget);
        self.solver
            .set_propagation_budget(self.options.propagation_budget);
        self.solver
            .set_deadline(self.options.deadline.map(|d| Instant::now() + d));
        self.solver.set_cancel_token(self.options.cancel.clone());

        let t2 = Instant::now();
        let mut count = 0;
        while count < limit
            && self.solver.solve_with_assumptions(&[act.positive()]) == SolveResult::Sat
        {
            let inst = decode(
                self.translator.schema(),
                self.translator.bounds(),
                self.translator.rel_inputs(),
                self.encoder.input_vars(),
                &self.solver,
            );
            visit(&inst);
            count += 1;
            if block_vars.is_empty() {
                break;
            }
            // A query-local blocking clause: vacuous once `act` retires.
            let mut lits = vec![act.negative()];
            for &v in &block_vars {
                match self.solver.model_value(v) {
                    Some(true) => lits.push(v.negative()),
                    Some(false) => lits.push(v.positive()),
                    None => {}
                }
            }
            if !self.solver.add_clause(&lits) {
                break;
            }
        }
        self.stats.solve_time += t2.elapsed();
        self.retire(act.negative());
        Ok(count)
    }

    /// Permanently disables a query's activation literal so its clauses
    /// (and any blocking clauses carrying it) become vacuous.
    fn retire(&mut self, not_act: satsolver::Lit) {
        self.solver.add_clause(&[not_act]);
    }

    /// The DRAT proof accumulated across every query of this session,
    /// when the session was created with [`Options::proof_logging`].
    ///
    /// The log is append-only, so an incremental
    /// [`satsolver::drat::Checker`] can re-verify just the steps each
    /// query adds; after an `Unsat` query, checking the proof and then
    /// [`expect_core`](satsolver::drat::Checker::expect_core) with
    /// [`Session::last_core`] certifies the verdict.
    pub fn proof(&self) -> Option<&Proof> {
        self.solver.proof()
    }

    /// The assumption core of the most recent query, `Some` exactly when
    /// that query answered `Unsat`. For session queries the core is over
    /// the query's activation literal: `[act]` when the query formula
    /// conflicts with the base, empty when the base itself (plus retired
    /// activations) became unsatisfiable.
    pub fn last_core(&self) -> Option<&[Lit]> {
        self.last_core.as_deref()
    }

    /// Number of live learnt clauses in the session's solver — the
    /// search state that persists across queries.
    pub fn num_learnts(&self) -> usize {
        self.solver.num_learnts()
    }

    /// Cumulative counters of the session's long-lived solver (across
    /// every query so far) — lets callers assert that cross-query
    /// policies such as learnt-DB reduction actually fire.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }
}

/// Per-query solver counters: the difference between two cumulative
/// snapshots of one long-lived solver.
fn stats_delta(before: SolverStats, after: SolverStats) -> SolverStats {
    SolverStats {
        conflicts: after.conflicts - before.conflicts,
        decisions: after.decisions - before.decisions,
        propagations: after.propagations - before.propagations,
        binary_propagations: after.binary_propagations - before.binary_propagations,
        restarts: after.restarts - before.restarts,
        learnt_clauses: after.learnt_clauses - before.learnt_clauses,
        learnt_literals: after.learnt_literals - before.learnt_literals,
        lbd_sum: after.lbd_sum - before.lbd_sum,
        lbd_glue_learnts: after.lbd_glue_learnts - before.lbd_glue_learnts,
        reduce_sweeps: after.reduce_sweeps - before.reduce_sweeps,
        deleted_clauses: after.deleted_clauses - before.deleted_clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::{ModelFinder, Problem};
    use relational::eval_formula;
    use relational::patterns;
    use relational::schema::rel;

    fn acyclic_base() -> (Schema, Bounds, Formula) {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 3);
        (schema, bounds, patterns::acyclic(&rel(r)))
    }

    #[test]
    fn session_verdicts_match_scratch() {
        let (schema, bounds, base) = acyclic_base();
        let r = schema.find("r").unwrap();
        let queries = [
            rel(r).some(),
            rel(r).no(),
            rel(r).one(),
            rel(r).join(&rel(r)).some(),
            patterns::irreflexive(&rel(r)).not(),
        ];
        let mut session = Session::new(&schema, &bounds, &base, Options::default()).unwrap();
        let finder = ModelFinder::new(Options::default());
        for q in &queries {
            let (sv, _) = session.solve(q).unwrap();
            let (fv, _) = finder
                .solve(&Problem {
                    schema: schema.clone(),
                    bounds: bounds.clone(),
                    formula: base.and(q),
                })
                .unwrap();
            assert_eq!(
                sv.is_unsat(),
                fv.is_unsat(),
                "session and scratch disagree on {q:?}"
            );
            if let Verdict::Sat(inst) = &sv {
                assert!(eval_formula(&schema, inst, &base.and(q)).unwrap());
            }
        }
    }

    #[test]
    fn queries_do_not_leak_into_later_ones() {
        let (schema, bounds, base) = acyclic_base();
        let r = schema.find("r").unwrap();
        let mut session = Session::new(&schema, &bounds, &base, Options::default()).unwrap();
        // An unsatisfiable query must not poison the session.
        let (v, _) = session.solve(&rel(r).some().and(&rel(r).no())).unwrap();
        assert!(v.is_unsat());
        let (v, _) = session.solve(&rel(r).some()).unwrap();
        assert!(v.instance().is_some());
        // Two contradictory queries each satisfiable on their own.
        let (v1, _) = session.solve(&rel(r).no()).unwrap();
        assert!(v1.instance().is_some());
        let (v2, _) = session.solve(&rel(r).some()).unwrap();
        assert!(v2.instance().is_some());
    }

    #[test]
    fn later_queries_hit_the_gate_cache() {
        let (schema, bounds, base) = acyclic_base();
        let r = schema.find("r").unwrap();
        let mut session = Session::new(&schema, &bounds, &base, Options::default()).unwrap();
        // Both queries contain the subcircuit r;r.
        let (_, _) = session.solve(&rel(r).join(&rel(r)).some()).unwrap();
        let (_, r2) = session
            .solve(&rel(r).join(&rel(r)).join(&rel(r)).some())
            .unwrap();
        assert!(
            r2.gate_cache_hits > 0,
            "second query should reuse the r;r encoding"
        );
    }

    #[test]
    fn session_enumerate_matches_scratch_count() {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 2);
        let mut session =
            Session::new(&schema, &bounds, &Formula::True, Options::default()).unwrap();
        // `one r` has exactly 4 models over a 2-atom universe.
        let n = session.enumerate(&rel(r).one(), 100, |_| {}).unwrap();
        assert_eq!(n, 4);
        // `no r` has exactly 1; the blocking clauses above must be gone.
        let n = session.enumerate(&rel(r).no(), 100, |_| {}).unwrap();
        assert_eq!(n, 1);
        // And `some r` has 2^4 - 1.
        let n = session.enumerate(&rel(r).some(), 100, |_| {}).unwrap();
        assert_eq!(n, 15);
    }

    #[test]
    fn check_finds_counterexample_and_validity() {
        let (schema, bounds, _) = acyclic_base();
        let r = schema.find("r").unwrap();
        let mut session = Session::new(
            &schema,
            &bounds,
            &patterns::acyclic(&rel(r)),
            Options::check(),
        )
        .unwrap();
        let (res, _) = session.check(&patterns::irreflexive(&rel(r))).unwrap();
        assert!(res.is_valid(), "acyclic implies irreflexive");
        let (res, _) = session.check(&rel(r).no()).unwrap();
        assert!(
            matches!(res, CheckResult::Counterexample(_)),
            "acyclic does not imply empty"
        );
    }

    #[test]
    #[should_panic(expected = "enumeration on a symmetry-breaking session")]
    fn enumerate_rejects_symmetry_breaking() {
        let (schema, bounds, base) = acyclic_base();
        let mut session = Session::new(&schema, &bounds, &base, Options::check()).unwrap();
        let r = schema.find("r").unwrap();
        let _ = session.enumerate(&rel(r).some(), 10, |_| {});
    }

    #[test]
    fn per_query_deadline_yields_unknown_not_poison() {
        let (schema, bounds, base) = acyclic_base();
        let r = schema.find("r").unwrap();
        let mut session = Session::new(&schema, &bounds, &base, Options::default()).unwrap();
        session.set_deadline(Some(Duration::ZERO));
        let (v, report) = session.solve(&rel(r).some()).unwrap();
        assert_eq!(v, Verdict::Unknown);
        assert_eq!(report.interrupted, Some(Interrupt::Deadline));
        // Clearing the deadline restores normal solving.
        session.set_deadline(None);
        let (v, _) = session.solve(&rel(r).some()).unwrap();
        assert!(v.instance().is_some());
    }

    #[test]
    fn reduce_db_keeps_firing_across_session_queries() {
        // Regression test for the learnt-clause retention bug: the old
        // `max_learnt` threshold grew geometrically on every sweep and
        // was never reset between queries, so a long-lived session
        // progressively stopped deleting learnt clauses. The
        // conflict-cadence policy must keep sweeping on late queries.
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 6);
        let base = patterns::acyclic(&rel(r));
        let mut session = Session::new(
            &schema,
            &bounds,
            &base,
            Options::default().with_reduce_interval(1),
        )
        .unwrap();
        // Warm up the session with many easy queries: the point is query
        // *count*, not difficulty — the old policy's threshold only ever
        // ratcheted up across queries, so late queries stopped sweeping.
        let queries = [
            rel(r).some(),
            rel(r).no(),
            rel(r).one(),
            rel(r).join(&rel(r)).some(),
            patterns::irreflexive(&rel(r)),
        ];
        for _ in 0..4 {
            for q in &queries {
                let _ = session.solve(q).unwrap();
            }
        }
        // Late, conflict-heavy work on the same solver must still run
        // reduction sweeps. Enumeration blocks each model it finds, so
        // walking hundreds of models forces conflicts regardless of how
        // lucky the saved phases are; the fresh UNSAT query adds an
        // exhaustive search on top.
        let before = session.solver.stats();
        let _ = session.enumerate(&rel(r).some(), 300, |_| {}).unwrap();
        let fresh = patterns::strict_total_order_on(&rel(r), &relational::Expr::Univ)
            .and(&rel(r).join(&rel(r)).intersect(&rel(r)).no());
        let (v, _) = session.solve(&fresh).unwrap();
        assert!(
            v.is_unsat(),
            "a total order on 6 atoms always has r;r ∩ r ≠ ∅"
        );
        let late = stats_delta(before, session.solver.stats());
        assert!(
            late.conflicts > 0,
            "late phase produced no conflicts; test needs harder queries"
        );
        assert!(
            late.reduce_sweeps > 0,
            "reduce_db stopped firing on late session queries \
             ({} conflicts in the late phase)",
            late.conflicts
        );
    }
}
