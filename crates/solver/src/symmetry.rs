//! Symmetry detection and lex-leader symmetry-breaking predicates.
//!
//! Following Kodkod, atoms that play identical roles in every relation's
//! bounds are interchangeable: permuting them maps models to models. We
//! detect maximal interchangeable classes exactly (by checking that each
//! candidate transposition preserves all bounds) and then emit lex-leader
//! constraints for adjacent transpositions within each class. This prunes
//! isomorphic models without affecting satisfiability.

use std::collections::BTreeMap;

use relational::{Atom, Bounds, Expr, Formula, Schema, Tuple, TupleSet};

use crate::circuit::{Circuit, GateId};

/// True when `formula` mentions specific atoms by identity (a non-empty
/// [`Expr::Const`]), which makes it unsafe to combine with bounds-only
/// symmetry breaking.
///
/// [`symmetry_classes`] inspects the *bounds* alone; a constant inside
/// the formula can pin an atom the bounds consider interchangeable, and
/// the lex-leader predicates then exclude models that satisfy the pinned
/// formula but are not lex-minimal — turning Sat into Unsat. (The litmus
/// conformance sweep in PR 4 caught exactly this.) Empty constants are
/// permutation-invariant and therefore fine; any non-empty constant is
/// conservatively treated as pinning.
pub fn formula_pins_atoms(formula: &Formula) -> bool {
    match formula {
        // Free booleans are atom-independent: any permutation of atoms
        // leaves their truth value untouched.
        Formula::True | Formula::False | Formula::Free(_) => false,
        Formula::Subset(a, b) | Formula::Equal(a, b) => expr_pins_atoms(a) || expr_pins_atoms(b),
        Formula::Some(e) | Formula::No(e) | Formula::One(e) | Formula::Lone(e) => {
            expr_pins_atoms(e)
        }
        Formula::Not(f) => formula_pins_atoms(f),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(formula_pins_atoms),
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            formula_pins_atoms(a) || formula_pins_atoms(b)
        }
        Formula::ForAll(_, e, f) | Formula::Exists(_, e, f) => {
            expr_pins_atoms(e) || formula_pins_atoms(f)
        }
    }
}

fn expr_pins_atoms(expr: &Expr) -> bool {
    match expr {
        Expr::Rel(_) | Expr::Var(_) | Expr::Iden | Expr::Univ | Expr::None(_) => false,
        Expr::Const(ts) => !ts.is_empty(),
        Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Difference(a, b)
        | Expr::Join(a, b)
        | Expr::Product(a, b) => expr_pins_atoms(a) || expr_pins_atoms(b),
        Expr::Transpose(a) | Expr::Closure(a) | Expr::ReflexiveClosure(a) => expr_pins_atoms(a),
    }
}

/// Computes the interchangeable-atom classes of `bounds`.
///
/// Two atoms are in the same class iff swapping them maps every relation's
/// lower and upper bound onto itself. Classes with a single atom are
/// omitted.
pub fn symmetry_classes(schema: &Schema, bounds: &Bounds) -> Vec<Vec<Atom>> {
    let n = bounds.universe_size() as Atom;
    let mut remaining: Vec<Atom> = (0..n).collect();
    let mut classes = Vec::new();
    while let Some(&pivot) = remaining.first() {
        let mut class = vec![pivot];
        let mut rest = Vec::new();
        for &a in &remaining[1..] {
            if swap_preserves_bounds(schema, bounds, pivot, a) {
                class.push(a);
            } else {
                rest.push(a);
            }
        }
        if class.len() > 1 {
            classes.push(class);
        }
        remaining = rest;
    }
    classes
}

fn swap_preserves_bounds(schema: &Schema, bounds: &Bounds, a: Atom, b: Atom) -> bool {
    for (id, _) in schema.iter() {
        if !invariant_under_swap(bounds.lower(id), a, b)
            || !invariant_under_swap(bounds.upper(id), a, b)
        {
            return false;
        }
    }
    true
}

fn invariant_under_swap(ts: &TupleSet, a: Atom, b: Atom) -> bool {
    ts.iter().all(|t| ts.contains(&apply_swap(t, a, b)))
}

fn apply_swap(t: &Tuple, a: Atom, b: Atom) -> Tuple {
    Tuple::new(
        t.atoms()
            .iter()
            .map(|&x| {
                if x == a {
                    b
                } else if x == b {
                    a
                } else {
                    x
                }
            })
            .collect(),
    )
}

/// Adds lex-leader symmetry-breaking constraints for every adjacent
/// transposition within every interchangeable class, returning the
/// conjunction gate (to be ANDed with the problem's root gate).
///
/// The constraint for a transposition π is `V ≤lex π(V)` where `V` is the
/// concatenation of all relation matrices in a canonical tuple order. Any
/// model violating it has an isomorphic model satisfying it, so adding the
/// constraint preserves satisfiability (but not model counts — callers
/// enumerating models must not use this).
pub fn break_symmetries(
    schema: &Schema,
    bounds: &Bounds,
    circuit: &mut Circuit,
    rel_inputs: &[BTreeMap<Tuple, u32>],
    classes: &[Vec<Atom>],
) -> GateId {
    let mut constraints = Vec::new();
    for class in classes {
        for pair in class.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let c = lex_leader_constraint(schema, bounds, circuit, rel_inputs, a, b);
            constraints.push(c);
        }
    }
    circuit.and_all(constraints)
}

/// Builds `V ≤lex π(V)` for the transposition `(a b)`.
fn lex_leader_constraint(
    schema: &Schema,
    bounds: &Bounds,
    circuit: &mut Circuit,
    rel_inputs: &[BTreeMap<Tuple, u32>],
    a: Atom,
    b: Atom,
) -> GateId {
    // Build the paired vector (v_i, πv_i) across all relations in order.
    let mut pairs: Vec<(GateId, GateId)> = Vec::new();
    for (id, _) in schema.iter() {
        let inputs: &BTreeMap<Tuple, u32> = &rel_inputs[id.index()];
        let lower = bounds.lower(id);
        for (t, _) in inputs.clone() {
            let g = gate_for(circuit, rel_inputs, id.index(), lower, &t);
            let swapped = apply_swap(&t, a, b);
            if swapped == t {
                continue; // fixed point: contributes equality trivially
            }
            let gp = gate_for(circuit, rel_inputs, id.index(), lower, &swapped);
            pairs.push((g, gp));
        }
    }
    // V ≤lex π(V): prefix-equality chain.
    let mut eq_prefix = circuit.tru();
    let mut constraint = circuit.tru();
    for (x, y) in pairs {
        // eq_prefix => (x => y)
        let x_imp_y = circuit.implies(x, y);
        let step = circuit.implies(eq_prefix, x_imp_y);
        constraint = circuit.and(constraint, step);
        let x_iff_y = circuit.iff(x, y);
        eq_prefix = circuit.and(eq_prefix, x_iff_y);
    }
    constraint
}

/// The gate representing tuple `t` of relation `rel_index`: constant-true
/// if in the lower bound, the allocated input if free, constant-false
/// outside the upper bound.
fn gate_for(
    circuit: &Circuit,
    rel_inputs: &[BTreeMap<Tuple, u32>],
    rel_index: usize,
    lower: &TupleSet,
    t: &Tuple,
) -> GateId {
    if lower.contains(t) {
        return circuit.tru();
    }
    match rel_inputs[rel_index].get(t) {
        Some(&input_idx) => circuit.input_gate(input_idx),
        None => circuit.fls(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_free_bounds_are_one_class() {
        let mut schema = Schema::new();
        let _r = schema.relation("r", 2);
        let bounds = Bounds::new(&schema, 4);
        let classes = symmetry_classes(&schema, &bounds);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 4);
    }

    #[test]
    fn distinguished_atom_is_excluded() {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let s = schema.relation("s", 1);
        let mut bounds = Bounds::new(&schema, 4);
        let _ = r;
        // Atom 0 is pinned into s; atoms 1-3 remain interchangeable.
        bounds.bound_exact(s, TupleSet::from_atoms([0]));
        let classes = symmetry_classes(&schema, &bounds);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], vec![1, 2, 3]);
    }

    #[test]
    fn asymmetric_binary_bounds_split_classes() {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let mut bounds = Bounds::new(&schema, 3);
        // Upper bound only allows edges out of atom 0.
        bounds.bound_upper(r, TupleSet::from_pairs([(0, 1), (0, 2)]));
        let classes = symmetry_classes(&schema, &bounds);
        assert_eq!(classes, vec![vec![1, 2]]);
    }
}
