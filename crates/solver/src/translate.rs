//! Translation from bounded relational logic to boolean circuits.
//!
//! Every relation becomes a sparse matrix of gates indexed by tuple: tuples
//! in the lower bound map to constant-true, tuples outside the upper bound
//! are absent (constant-false), and tuples in between become free inputs.
//! Relational operators combine matrices pointwise or by join; transitive
//! closure uses iterative squaring (or naive unrolling, for the ablation
//! study). Formulas reduce to a single root gate.

use std::collections::{BTreeMap, HashMap};

use relational::ast::{Expr, Formula, VarId};
use relational::{Atom, Bounds, Schema, Tuple, TupleSet, TypeError};

use crate::circuit::{Circuit, GateId};

/// Strategy for encoding transitive closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosureStrategy {
    /// `log₂(n)` squaring steps: `r ← r ∪ r;r`.
    #[default]
    IterativeSquaring,
    /// `n-1` linear unrolling steps: `acc ← r ∪ acc;r`.
    Unrolled,
}

/// A sparse boolean matrix over tuples: the translated value of an
/// expression. Tuples absent from `entries` are constant-false.
#[derive(Debug, Clone)]
pub struct Matrix {
    arity: usize,
    entries: BTreeMap<Tuple, GateId>,
}

impl Matrix {
    fn empty(arity: usize) -> Matrix {
        Matrix {
            arity,
            entries: BTreeMap::new(),
        }
    }

    fn constant(c: &mut Circuit, ts: &TupleSet) -> Matrix {
        let mut m = Matrix::empty(ts.arity());
        let t = c.tru();
        for tuple in ts.iter() {
            m.entries.insert(tuple.clone(), t);
        }
        m
    }

    fn insert(&mut self, c: &Circuit, t: Tuple, g: GateId) {
        if !c.is_false(g) {
            self.entries.insert(t, g);
        }
    }

    fn get(&self, c: &Circuit, t: &Tuple) -> GateId {
        self.entries.get(t).copied().unwrap_or(c.fls())
    }

    /// The arity of this matrix.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The non-false entries.
    pub fn entries(&self) -> impl Iterator<Item = (&Tuple, GateId)> {
        self.entries.iter().map(|(t, &g)| (t, g))
    }
}

/// The result of translating a problem: a circuit, the root gate that must
/// hold, and for each relation the map from tuple to input index used for
/// decoding models.
#[derive(Debug)]
pub struct Translation {
    /// The boolean circuit.
    pub circuit: Circuit,
    /// The gate asserting the formula and all bounds.
    pub root: GateId,
    /// For each relation id: tuple → circuit input index.
    pub rel_inputs: Vec<BTreeMap<Tuple, u32>>,
    /// Sparse matrix cells materialized while translating (relation
    /// allocation plus every operator result); see
    /// [`IncrementalTranslator::matrix_cells`].
    pub matrix_cells: u64,
}

/// Translates `formula` under `bounds` into a boolean circuit.
///
/// # Errors
///
/// Returns a [`TypeError`] if the formula or any expression in it violates
/// arity discipline.
pub fn translate(
    schema: &Schema,
    bounds: &Bounds,
    formula: &Formula,
    strategy: ClosureStrategy,
) -> Result<Translation, TypeError> {
    let mut tr = IncrementalTranslator::new(schema, bounds, strategy);
    let root = tr.formula(formula)?;
    Ok(Translation {
        circuit: tr.inner.circuit,
        root,
        rel_inputs: tr.inner.rel_inputs,
        matrix_cells: tr.inner.cells,
    })
}

/// A persistent translator: one circuit accumulating the translations of
/// many formulas over the same (schema, bounds).
///
/// The relation matrices are allocated once at construction, so every
/// translated formula refers to the *same* input gates, and structural
/// hashing in the shared [`Circuit`] dedups any subexpression (joins,
/// closure squaring chains, quantifier expansions) that later formulas
/// have in common with earlier ones. This is the translation half of the
/// incremental `Session` pipeline.
#[derive(Debug)]
pub struct IncrementalTranslator {
    inner: Translator,
}

impl IncrementalTranslator {
    /// Creates a translator for `(schema, bounds)`, allocating the
    /// relation matrices.
    pub fn new(
        schema: &Schema,
        bounds: &Bounds,
        strategy: ClosureStrategy,
    ) -> IncrementalTranslator {
        let mut inner = Translator {
            schema: schema.clone(),
            bounds: bounds.clone(),
            circuit: Circuit::new(),
            rel_matrices: Vec::new(),
            rel_inputs: Vec::new(),
            env: HashMap::new(),
            strategy,
            bool_inputs: HashMap::new(),
            cells: 0,
        };
        inner.allocate_relations();
        IncrementalTranslator { inner }
    }

    /// Translates one more formula into the shared circuit and returns
    /// its root gate.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the formula violates arity discipline.
    pub fn formula(&mut self, formula: &Formula) -> Result<GateId, TypeError> {
        relational::check_formula(formula, &self.inner.schema)?;
        self.inner.formula(formula)
    }

    /// The shared circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.inner.circuit
    }

    /// Mutable access to the shared circuit (symmetry-breaking predicates
    /// are built directly into it).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.inner.circuit
    }

    /// The mutable circuit together with the relation input maps, for
    /// callers (symmetry breaking) that need both at once.
    pub fn parts_mut(&mut self) -> (&mut Circuit, &[BTreeMap<Tuple, u32>]) {
        (&mut self.inner.circuit, &self.inner.rel_inputs)
    }

    /// For each relation id: tuple → circuit input index.
    pub fn rel_inputs(&self) -> &[BTreeMap<Tuple, u32>] {
        &self.inner.rel_inputs
    }

    /// The schema this translator was built for.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// The bounds this translator was built for.
    pub fn bounds(&self) -> &Bounds {
        &self.inner.bounds
    }

    /// Cumulative count of sparse matrix cells materialized by this
    /// translator: the relation matrices allocated at construction plus
    /// every entry of every operator result (union, join, closure
    /// squaring steps, …). A measure of translation-side work that is
    /// deterministic for a fixed (schema, bounds, formula) sequence.
    pub fn matrix_cells(&self) -> u64 {
        self.inner.cells
    }
}

#[derive(Debug)]
struct Translator {
    schema: Schema,
    bounds: Bounds,
    circuit: Circuit,
    rel_matrices: Vec<Matrix>,
    rel_inputs: Vec<BTreeMap<Tuple, u32>>,
    env: HashMap<VarId, Atom>,
    strategy: ClosureStrategy,
    /// Circuit input allocated for each free boolean, keyed by
    /// [`relational::BoolId`] index. Persistent across formulas so a
    /// `Free(b)` in two formulas of one session refers to the same input;
    /// queries that want independent booleans must use distinct ids.
    bool_inputs: HashMap<u32, GateId>,
    /// Matrix cells materialized so far; see
    /// [`IncrementalTranslator::matrix_cells`].
    cells: u64,
}

impl Translator {
    fn allocate_relations(&mut self) {
        for (id, d) in self.schema.iter() {
            let lower = self.bounds.lower(id);
            let upper = self.bounds.upper(id);
            let mut m = Matrix::empty(d.arity);
            let mut inputs = BTreeMap::new();
            for t in upper.iter() {
                let g = if lower.contains(t) {
                    self.circuit.tru()
                } else {
                    let g = self.circuit.input();
                    inputs.insert(t.clone(), (self.circuit.num_inputs() - 1) as u32);
                    g
                };
                m.entries.insert(t.clone(), g);
            }
            self.cells += m.entries.len() as u64;
            self.rel_matrices.push(m);
            self.rel_inputs.push(inputs);
        }
    }

    /// Notes a freshly materialized matrix for the cell counter.
    fn built(&mut self, m: Matrix) -> Matrix {
        self.cells += m.entries.len() as u64;
        m
    }

    fn expr(&mut self, e: &Expr) -> Result<Matrix, TypeError> {
        let n = self.bounds.universe_size();
        Ok(match e {
            Expr::Rel(r) => self.rel_matrices[r.index()].clone(),
            Expr::Var(v) => {
                let atom = *self.env.get(v).ok_or(TypeError::UnboundVar(*v))?;
                let mut m = Matrix::empty(1);
                m.entries.insert(Tuple::new(vec![atom]), self.circuit.tru());
                self.built(m)
            }
            Expr::Const(ts) => {
                let m = Matrix::constant(&mut self.circuit, ts);
                self.built(m)
            }
            Expr::Iden => {
                let m = Matrix::constant(&mut self.circuit, &TupleSet::iden(n));
                self.built(m)
            }
            Expr::Univ => {
                let m = Matrix::constant(&mut self.circuit, &TupleSet::universe(n));
                self.built(m)
            }
            Expr::None(a) => Matrix::empty(*a),
            Expr::Union(a, b) => {
                let (ma, mb) = (self.expr(a)?, self.expr(b)?);
                self.union(&ma, &mb)
            }
            Expr::Intersect(a, b) => {
                let (ma, mb) = (self.expr(a)?, self.expr(b)?);
                self.intersect(&ma, &mb)
            }
            Expr::Difference(a, b) => {
                let (ma, mb) = (self.expr(a)?, self.expr(b)?);
                self.difference(&ma, &mb)
            }
            Expr::Join(a, b) => {
                let (ma, mb) = (self.expr(a)?, self.expr(b)?);
                self.join(&ma, &mb)
            }
            Expr::Product(a, b) => {
                let (ma, mb) = (self.expr(a)?, self.expr(b)?);
                self.product(&ma, &mb)
            }
            Expr::Transpose(a) => {
                let ma = self.expr(a)?;
                let mut m = Matrix::empty(2);
                for (t, g) in ma.entries {
                    m.entries.insert(t.reversed(), g);
                }
                self.built(m)
            }
            Expr::Closure(a) => {
                let ma = self.expr(a)?;
                self.closure(&ma)
            }
            Expr::ReflexiveClosure(a) => {
                let ma = self.expr(a)?;
                let closed = self.closure(&ma);
                let iden = Matrix::constant(&mut self.circuit, &TupleSet::iden(n));
                self.union(&closed, &iden)
            }
        })
    }

    fn union(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        let mut m = Matrix::empty(a.arity);
        for (t, &g) in &a.entries {
            m.entries.insert(t.clone(), g);
        }
        for (t, &g) in &b.entries {
            let existing = m.get(&self.circuit, t);
            let merged = self.circuit.or(existing, g);
            m.insert(&self.circuit, t.clone(), merged);
        }
        self.built(m)
    }

    fn intersect(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        let mut m = Matrix::empty(a.arity);
        for (t, &ga) in &a.entries {
            let gb = b.get(&self.circuit, t);
            let g = self.circuit.and(ga, gb);
            m.insert(&self.circuit, t.clone(), g);
        }
        self.built(m)
    }

    fn difference(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        let mut m = Matrix::empty(a.arity);
        for (t, &ga) in &a.entries {
            let gb = b.get(&self.circuit, t);
            let ngb = self.circuit.not(gb);
            let g = self.circuit.and(ga, ngb);
            m.insert(&self.circuit, t.clone(), g);
        }
        self.built(m)
    }

    fn join(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        let result_arity = a.arity + b.arity - 2;
        // Index b by first atom.
        let mut index: HashMap<Atom, Vec<(&Tuple, GateId)>> = HashMap::new();
        for (t, &g) in &b.entries {
            index.entry(t.atoms()[0]).or_default().push((t, g));
        }
        // Group products by result tuple, then OR them together.
        let mut products: BTreeMap<Tuple, Vec<GateId>> = BTreeMap::new();
        for (ta, &ga) in &a.entries {
            let last = *ta.atoms().last().expect("tuples are non-empty");
            if let Some(matches) = index.get(&last) {
                for &(tb, gb) in matches {
                    let mut atoms = ta.atoms()[..a.arity - 1].to_vec();
                    atoms.extend_from_slice(&tb.atoms()[1..]);
                    let g = self.circuit.and(ga, gb);
                    if !self.circuit.is_false(g) {
                        products.entry(Tuple::new(atoms)).or_default().push(g);
                    }
                }
            }
        }
        let mut m = Matrix::empty(result_arity);
        for (t, gates) in products {
            let g = self.circuit.or_all(gates);
            m.insert(&self.circuit, t, g);
        }
        self.built(m)
    }

    fn product(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        let mut m = Matrix::empty(a.arity + b.arity);
        for (ta, &ga) in &a.entries {
            for (tb, &gb) in &b.entries {
                let g = self.circuit.and(ga, gb);
                m.insert(&self.circuit, ta.concat(tb), g);
            }
        }
        self.built(m)
    }

    fn closure(&mut self, a: &Matrix) -> Matrix {
        let n = self.bounds.universe_size();
        match self.strategy {
            ClosureStrategy::IterativeSquaring => {
                let mut acc = a.clone();
                let mut span = 1usize;
                while span < n {
                    let squared = self.join(&acc, &acc);
                    acc = self.union(&acc, &squared);
                    span *= 2;
                }
                acc
            }
            ClosureStrategy::Unrolled => {
                let mut acc = a.clone();
                for _ in 1..n {
                    let step = self.join(&acc, a);
                    acc = self.union(a, &step);
                }
                acc
            }
        }
    }

    fn formula(&mut self, f: &Formula) -> Result<GateId, TypeError> {
        Ok(match f {
            Formula::True => self.circuit.tru(),
            Formula::False => self.circuit.fls(),
            Formula::Free(b) => {
                let circuit = &mut self.circuit;
                *self
                    .bool_inputs
                    .entry(b.0)
                    .or_insert_with(|| circuit.input())
            }
            Formula::Subset(a, b) => {
                let (ma, mb) = (self.expr(a)?, self.expr(b)?);
                self.subset(&ma, &mb)
            }
            Formula::Equal(a, b) => {
                let (ma, mb) = (self.expr(a)?, self.expr(b)?);
                let fwd = self.subset(&ma, &mb);
                let back = self.subset(&mb, &ma);
                self.circuit.and(fwd, back)
            }
            Formula::Some(a) => {
                let ma = self.expr(a)?;
                let gates: Vec<GateId> = ma.entries.values().copied().collect();
                self.circuit.or_all(gates)
            }
            Formula::No(a) => {
                let ma = self.expr(a)?;
                let gates: Vec<GateId> = ma.entries.values().copied().collect();
                let any = self.circuit.or_all(gates);
                self.circuit.not(any)
            }
            Formula::One(a) => {
                let ma = self.expr(a)?;
                let some = {
                    let gates: Vec<GateId> = ma.entries.values().copied().collect();
                    self.circuit.or_all(gates)
                };
                let lone = self.at_most_one(&ma);
                self.circuit.and(some, lone)
            }
            Formula::Lone(a) => {
                let ma = self.expr(a)?;
                self.at_most_one(&ma)
            }
            Formula::Not(inner) => {
                let g = self.formula(inner)?;
                self.circuit.not(g)
            }
            Formula::And(fs) => {
                let mut gates = Vec::with_capacity(fs.len());
                for f in fs {
                    gates.push(self.formula(f)?);
                }
                self.circuit.and_all(gates)
            }
            Formula::Or(fs) => {
                let mut gates = Vec::with_capacity(fs.len());
                for f in fs {
                    gates.push(self.formula(f)?);
                }
                self.circuit.or_all(gates)
            }
            Formula::Implies(a, b) => {
                let (ga, gb) = (self.formula(a)?, self.formula(b)?);
                self.circuit.implies(ga, gb)
            }
            Formula::Iff(a, b) => {
                let (ga, gb) = (self.formula(a)?, self.formula(b)?);
                self.circuit.iff(ga, gb)
            }
            Formula::ForAll(v, domain, body) => {
                let md = self.expr(domain)?;
                let mut gates = Vec::new();
                for (t, gd) in md.entries.clone() {
                    self.env.insert(*v, t.atoms()[0]);
                    let gb = self.formula(body)?;
                    self.env.remove(v);
                    gates.push(self.circuit.implies(gd, gb));
                }
                self.circuit.and_all(gates)
            }
            Formula::Exists(v, domain, body) => {
                let md = self.expr(domain)?;
                let mut gates = Vec::new();
                for (t, gd) in md.entries.clone() {
                    self.env.insert(*v, t.atoms()[0]);
                    let gb = self.formula(body)?;
                    self.env.remove(v);
                    gates.push(self.circuit.and(gd, gb));
                }
                self.circuit.or_all(gates)
            }
        })
    }

    fn subset(&mut self, a: &Matrix, b: &Matrix) -> GateId {
        let mut gates = Vec::with_capacity(a.entries.len());
        for (t, &ga) in &a.entries {
            let gb = b.get(&self.circuit, t);
            gates.push(self.circuit.implies(ga, gb));
        }
        self.circuit.and_all(gates)
    }

    fn at_most_one(&mut self, a: &Matrix) -> GateId {
        let gates: Vec<GateId> = a.entries.values().copied().collect();
        let mut constraints = Vec::new();
        for i in 0..gates.len() {
            for j in (i + 1)..gates.len() {
                let both = self.circuit.and(gates[i], gates[j]);
                constraints.push(self.circuit.not(both));
            }
        }
        self.circuit.and_all(constraints)
    }
}

// Re-check that arity discipline is validated before translation: the
// public entry point calls `relational::check_formula` first, so the
// matrix operations may assume consistent arities.
#[cfg(test)]
mod tests {
    use super::*;
    use relational::schema::rel;

    #[test]
    fn translation_counts_inputs() {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let mut bounds = Bounds::new(&schema, 2);
        bounds.bound_upper(r, TupleSet::from_pairs([(0, 0), (0, 1), (1, 0), (1, 1)]));
        let f = rel(r).some();
        let tr = translate(&schema, &bounds, &f, ClosureStrategy::default()).unwrap();
        assert_eq!(tr.rel_inputs[0].len(), 4);
        assert!(!tr.circuit.is_false(tr.root));
    }

    #[test]
    fn lower_bound_tuples_are_constant_true() {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let mut bounds = Bounds::new(&schema, 2);
        bounds.bound(
            r,
            TupleSet::from_pairs([(0, 1)]),
            TupleSet::from_pairs([(0, 1), (1, 0)]),
        );
        // `some r` must be constant-true: (0,1) is always present.
        let tr = translate(&schema, &bounds, &rel(r).some(), ClosureStrategy::default()).unwrap();
        assert!(tr.circuit.is_true(tr.root));
        assert_eq!(tr.rel_inputs[0].len(), 1); // only (1,0) is free
    }

    #[test]
    fn matrix_cells_are_counted_and_deterministic() {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let mut bounds = Bounds::new(&schema, 3);
        bounds.bound_upper(r, TupleSet::universe(3).product(&TupleSet::universe(3)));
        let f = rel(r)
            .closure()
            .intersect(&relational::ast::Expr::Iden)
            .no();
        let a = translate(&schema, &bounds, &f, ClosureStrategy::default()).unwrap();
        let b = translate(&schema, &bounds, &f, ClosureStrategy::default()).unwrap();
        assert!(a.matrix_cells > 9, "closure work must be counted");
        assert_eq!(a.matrix_cells, b.matrix_cells);
    }

    #[test]
    fn type_errors_propagate() {
        let mut schema = Schema::new();
        let r = schema.relation("r", 2);
        let s = schema.relation("s", 1);
        let bounds = Bounds::new(&schema, 2);
        let bad = rel(r).union(&rel(s)).some();
        assert!(translate(&schema, &bounds, &bad, ClosureStrategy::default()).is_err());
    }
}
