//! Bounded in-process smoke run of every generator — the same checks
//! `fuzzherd` drives, small enough for the tier-1 suite. Zero
//! disagreements expected; a failure prints the replayable seed and the
//! shrunk minimal case via [`fuzzkit::Disagreement`]'s `Display`.

use fuzzkit::{cnf, litmusgen, relform, round_seed};
use modelfinder::SessionPool;

const BASE_SEED: u64 = 7;

#[test]
fn cnf_rounds_find_no_disagreement() {
    for round in 0..48 {
        let seed = round_seed(BASE_SEED, "cnf", round);
        cnf::run_round(seed).unwrap_or_else(|d| panic!("{d}"));
    }
}

#[test]
fn relform_rounds_find_no_disagreement() {
    for round in 0..16 {
        let seed = round_seed(BASE_SEED, "relform", round);
        relform::run_round(seed).unwrap_or_else(|d| panic!("{d}"));
    }
}

#[test]
fn litmus_rounds_find_no_disagreement() {
    let pool = SessionPool::new();
    for round in 0..10 {
        let seed = round_seed(BASE_SEED, "litmusgen", round);
        litmusgen::run_round(seed, &pool).unwrap_or_else(|d| panic!("{d}"));
    }
}
