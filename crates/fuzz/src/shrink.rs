//! A generic greedy input shrinker.
//!
//! Differential failures found on random inputs are rarely minimal; the
//! shrinker repeatedly replaces the current failing input with the first
//! still-failing candidate from a caller-supplied reduction step until no
//! candidate fails (a local minimum) or the evaluation budget runs out.

/// Greedily minimizes `failing`.
///
/// `candidates` proposes strictly simpler variants of an input (smaller
/// formula, fewer clauses, fewer instructions — the caller defines
/// "simpler"); `still_fails` re-runs the failing check. Each accepted
/// candidate restarts the scan, so the result is a local minimum of the
/// reduction relation — every candidate of the returned value passes.
///
/// `still_fails` is invoked at most `budget` times, bounding shrink cost
/// on expensive checks; on exhaustion the best input found so far is
/// returned.
pub fn shrink<T: Clone>(
    failing: T,
    mut candidates: impl FnMut(&T) -> Vec<T>,
    mut still_fails: impl FnMut(&T) -> bool,
    budget: usize,
) -> T {
    let mut current = failing;
    let mut evals = 0usize;
    'progress: loop {
        for cand in candidates(&current) {
            if evals >= budget {
                return current;
            }
            evals += 1;
            if still_fails(&cand) {
                current = cand;
                continue 'progress;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shrinking a vector of numbers where "fails" means it contains
    /// both a multiple of 3 and a multiple of 5 must reach a two-element
    /// (or smaller) witness.
    #[test]
    fn reaches_a_local_minimum() {
        let fails = |v: &Vec<u32>| v.iter().any(|x| x % 3 == 0) && v.iter().any(|x| x % 5 == 0);
        let drop_one = |v: &Vec<u32>| {
            (0..v.len())
                .map(|i| {
                    let mut w = v.clone();
                    w.remove(i);
                    w
                })
                .collect()
        };
        let start = vec![1, 9, 4, 25, 7, 15, 8];
        assert!(fails(&start));
        let min = shrink(start, drop_one, |v| fails(v), 1000);
        assert!(fails(&min));
        // 15 alone fails; the greedy walk must land on ≤ 2 elements.
        assert!(min.len() <= 2, "not minimal: {min:?}");
    }

    #[test]
    fn budget_bounds_the_walk() {
        let min = shrink(
            (0..100).collect::<Vec<u32>>(),
            |v| {
                (0..v.len())
                    .map(|i| {
                        let mut w = v.clone();
                        w.remove(i);
                        w
                    })
                    .collect()
            },
            |v| !v.is_empty(),
            5,
        );
        // Only five evaluations were allowed, so at most five removals.
        assert!(min.len() >= 95);
    }
}
