//! Random CNF instances: CDCL against a naive DPLL oracle.
//!
//! Instances are small (≤ 8 variables) so the oracle's exhaustive
//! branching is instant, but the clause/variable ratio is swept through
//! the satisfiability threshold so both verdicts occur often. Half the
//! rounds also draw assumption literals, exercising
//! [`satsolver::Solver::solve_with_assumptions`] and its unsat cores.
//!
//! Checks per round:
//!
//! * verdict agreement between CDCL and the oracle;
//! * `Sat` models actually satisfy every clause and assumption;
//! * `Unsat` answers carry a DRAT proof accepted by the independent
//!   checker, with the failed-assumption core as the certified final
//!   derivation ([`satsolver::drat::certify_unsat`]);
//! * the reported core is a subset of the assumptions and is itself
//!   unsatisfiable according to the oracle.

use std::fmt;

use satsolver::{drat, ArenaMode, Lit, SolveResult, Solver, Var};
use testkit::Rng;

use crate::{Disagreement, RoundStats};

/// A generated CNF instance in DIMACS-style signed-integer literals
/// (variable `k` is `k`/`-k`, 1-based), plus assumption literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfCase {
    /// Number of variables; literals range over `±1..=±num_vars`.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<i32>>,
    /// Assumption literals for the incremental interface (may be empty).
    pub assumptions: Vec<i32>,
}

impl fmt::Display for CnfCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for cl in &self.clauses {
            for l in cl {
                write!(f, "{l} ")?;
            }
            writeln!(f, "0")?;
        }
        if !self.assumptions.is_empty() {
            write!(f, "a")?;
            for l in &self.assumptions {
                write!(f, " {l}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Draws a random instance around the 3-SAT threshold.
pub fn generate(rng: &mut Rng) -> CnfCase {
    let num_vars = rng.range(3, 9) as usize;
    let num_clauses = rng.range(1, 4 * num_vars as u64 + 1) as usize;
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = rng.range(1, 4) as usize;
            (0..len).map(|_| random_lit(rng, num_vars)).collect()
        })
        .collect();
    let assumptions = if rng.flip() {
        let n = rng.range(1, 4) as usize;
        (0..n).map(|_| random_lit(rng, num_vars)).collect()
    } else {
        Vec::new()
    };
    CnfCase {
        num_vars,
        clauses,
        assumptions,
    }
}

fn random_lit(rng: &mut Rng, num_vars: usize) -> i32 {
    let v = rng.range(1, num_vars as u64 + 1) as i32;
    if rng.flip() {
        v
    } else {
        -v
    }
}

/// The naive oracle: exhaustive DPLL branching with no propagation or
/// learning — nothing in common with the CDCL implementation.
pub fn oracle_sat(case: &CnfCase) -> bool {
    let mut assign: Vec<Option<bool>> = vec![None; case.num_vars + 1];
    for &a in &case.assumptions {
        let v = a.unsigned_abs() as usize;
        let want = a > 0;
        match assign[v] {
            Some(b) if b != want => return false, // contradictory assumptions
            _ => assign[v] = Some(want),
        }
    }
    dpll(&case.clauses, &mut assign)
}

fn dpll(clauses: &[Vec<i32>], assign: &mut [Option<bool>]) -> bool {
    let mut branch = None;
    for cl in clauses {
        let mut satisfied = false;
        let mut unassigned = None;
        for &l in cl {
            let v = l.unsigned_abs() as usize;
            match assign[v] {
                Some(b) => {
                    if b == (l > 0) {
                        satisfied = true;
                        break;
                    }
                }
                None => unassigned = unassigned.or(Some(v)),
            }
        }
        if satisfied {
            continue;
        }
        match unassigned {
            None => return false, // clause falsified
            Some(v) => {
                branch = Some(v);
                break;
            }
        }
    }
    let Some(v) = branch else {
        return true; // every clause satisfied
    };
    for b in [false, true] {
        assign[v] = Some(b);
        if dpll(clauses, assign) {
            assign[v] = None;
            return true;
        }
    }
    assign[v] = None;
    false
}

/// Runs one instance through CDCL (with proof logging) and every check
/// listed in the module docs — twice: once with the default solver
/// configuration, and once in a stress configuration (huge-page clause
/// arena, reduction sweep after every conflict) that forces the LBD
/// deletion policy and arena compaction onto even these tiny instances.
/// Both runs face the same oracle and both must produce certifiable
/// DRAT proofs. `Err` explains the first failure.
pub fn check(case: &CnfCase) -> Result<RoundStats, String> {
    let stats = check_with(case, Solver::new())?;
    let mut stress = Solver::with_arena_mode(ArenaMode::HugePages);
    stress.set_reduce_interval(1);
    check_with(case, stress).map_err(|e| format!("stress config: {e}"))?;
    Ok(stats)
}

fn check_with(case: &CnfCase, mut solver: Solver) -> Result<RoundStats, String> {
    let expected = oracle_sat(case);
    solver.enable_proof_logging();
    let vars: Vec<Var> = (0..case.num_vars).map(|_| solver.new_var()).collect();
    let lit = |l: i32| -> Lit {
        let v = vars[(l.unsigned_abs() - 1) as usize];
        Lit::new(v, l < 0)
    };
    for cl in &case.clauses {
        let lits: Vec<Lit> = cl.iter().map(|&l| lit(l)).collect();
        solver.add_clause(&lits);
    }
    let assumptions: Vec<Lit> = case.assumptions.iter().map(|&l| lit(l)).collect();
    match solver.solve_with_assumptions(&assumptions) {
        SolveResult::Sat => {
            if !expected {
                return Err("CDCL answered Sat, the DPLL oracle answers Unsat".to_string());
            }
            for cl in &case.clauses {
                if !cl
                    .iter()
                    .any(|&l| solver.model_lit_value(lit(l)) == Some(true))
                {
                    return Err(format!("CDCL model does not satisfy clause {cl:?}"));
                }
            }
            for &a in &case.assumptions {
                if solver.model_lit_value(lit(a)) != Some(true) {
                    return Err(format!("CDCL model violates assumption {a}"));
                }
            }
        }
        SolveResult::Unsat => {
            if expected {
                return Err("CDCL answered Unsat, the DPLL oracle answers Sat".to_string());
            }
            let core = solver.final_conflict().to_vec();
            let proof = solver.proof().expect("proof logging enabled");
            drat::certify_unsat(proof, &core)
                .map_err(|e| format!("DRAT certificate rejected: {e}"))?;
            for l in &core {
                if !assumptions.contains(l) {
                    return Err(format!("core literal {l:?} is not an assumption"));
                }
            }
            // The core must be sufficient on its own: re-solving under
            // just the core assumptions stays Unsat per the oracle.
            let core_case = CnfCase {
                num_vars: case.num_vars,
                clauses: case.clauses.clone(),
                assumptions: core.iter().map(|l| l.to_dimacs() as i32).collect(),
            };
            if oracle_sat(&core_case) {
                return Err(format!(
                    "unsat core {:?} is satisfiable under the oracle",
                    core_case.assumptions
                ));
            }
        }
        SolveResult::Unknown(why) => {
            return Err(format!(
                "CDCL answered Unknown ({why:?}) with no budget set"
            ));
        }
    }
    Ok(RoundStats {
        sat_vars: solver.num_vars() as u64,
        sat_clauses: solver.num_clauses() as u64,
        conflicts: solver.stats().conflicts,
    })
}

/// One fuzz round: generate from `seed`, check, and on failure shrink to
/// a minimal reproduction.
///
/// # Errors
///
/// The shrunk [`Disagreement`] when any check fails.
pub fn run_round(seed: u64) -> Result<RoundStats, Disagreement> {
    let mut rng = Rng::seed(seed);
    let case = generate(&mut rng);
    match check(&case) {
        Ok(stats) => Ok(stats),
        Err(what) => {
            let minimal = crate::shrink::shrink(case, candidates, |c| check(c).is_err(), 400);
            Err(Disagreement {
                generator: "cnf",
                seed,
                what,
                shrunk: minimal.to_string(),
            })
        }
    }
}

/// Reduction step: drop a clause, drop a literal, or drop an assumption.
fn candidates(case: &CnfCase) -> Vec<CnfCase> {
    let mut out = Vec::new();
    for i in 0..case.clauses.len() {
        let mut c = case.clone();
        c.clauses.remove(i);
        out.push(c);
    }
    for i in 0..case.clauses.len() {
        for j in 0..case.clauses[i].len() {
            let mut c = case.clone();
            c.clauses[i].remove(j);
            out.push(c);
        }
    }
    for i in 0..case.assumptions.len() {
        let mut c = case.clone();
        c.assumptions.remove(i);
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_handles_known_instances() {
        let sat = CnfCase {
            num_vars: 2,
            clauses: vec![vec![1, 2], vec![-1, 2]],
            assumptions: vec![],
        };
        assert!(oracle_sat(&sat));
        let unsat = CnfCase {
            num_vars: 1,
            clauses: vec![vec![1], vec![-1]],
            assumptions: vec![],
        };
        assert!(!oracle_sat(&unsat));
        let by_assumption = CnfCase {
            num_vars: 2,
            clauses: vec![vec![1, 2]],
            assumptions: vec![-1, -2],
        };
        assert!(!oracle_sat(&by_assumption));
        let contradictory = CnfCase {
            num_vars: 1,
            clauses: vec![],
            assumptions: vec![1, -1],
        };
        assert!(!oracle_sat(&contradictory));
    }

    #[test]
    fn rounds_are_deterministic_and_agree() {
        for round in 0..64 {
            let seed = crate::round_seed(0xF00D, "cnf", round);
            let first = run_round(seed).unwrap_or_else(|d| panic!("{d}"));
            let second = run_round(seed).unwrap_or_else(|d| panic!("{d}"));
            assert_eq!(first.sat_clauses, second.sat_clauses);
        }
    }
}
