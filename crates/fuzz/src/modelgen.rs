//! Random PTX litmus tests checked differentially across consistency
//! models: the paper's axiomatic model against the cumulative-across-
//! scopes draft ([`ptx::cumulative`]).
//!
//! Each generated case (the [`crate::litmusgen`] program shape: loads,
//! stores, and fences over two threads and two locations) is answered
//! under *both* models, and under each model by three engines —
//! exhaustive execution enumeration, a scratch
//! [`modelfinder::ModelFinder`] on
//! [`litmus::sat::scratch_problem_model`], and a pooled incremental
//! [`litmus::sat::SatSession`] keyed by `(model, signature)` with every
//! `Unsat` DRAT-certified.
//!
//! The failure condition is *per-model* engine disagreement (or a
//! rejected certificate): all three engines implement the same model,
//! so any split is a bug regardless of which model it happens under.
//! *Cross-model* verdict differences are not failures — they are the
//! distinguishing fragment the `ptxdistill` search mines deliberately
//! (CoRR-style shapes whose Read→Read coherence the cumulative draft
//! drops) — and are only counted, surfacing in `fuzzherd --stats` as
//! `gen.model.fuzz.model_diffs`.

use litmus::sat::{self, Signature};
use litmus::{run_ptx_model, Model, PtxLitmus};
use modelfinder::harness::SessionPool;
use modelfinder::{drat, ModelFinder, Options, Verdict};
use ptx::cumulative::ALL_MODELS;
use testkit::Rng;

use crate::litmusgen::{self, CertSession, LitmusCase};
use crate::{Disagreement, RoundStats};

/// The session-pool key: sessions are warm per model *and* universe
/// signature.
pub type PoolKey = (Model, Signature);

/// Runs one case under one model through all three engines. `Err`
/// explains the first engine disagreement or certificate failure;
/// `Ok` carries the model's (agreed) observability verdict.
pub fn check_model(
    test: &PtxLitmus,
    model: Model,
    pool: &SessionPool<PoolKey, CertSession>,
) -> Result<(bool, RoundStats), String> {
    let ground = run_ptx_model(test, model);
    let mut stats = RoundStats::default();

    // Pooled incremental session (checked back in only on success — a
    // failed certification leaves the checker desynced from the proof).
    let sig = sat::signature(&test.program);
    let key = (model, sig);
    let mut cs = pool.checkout(&key, || CertSession::open_model(sig, model));
    let result = cs
        .session
        .run(test)
        .map_err(|e| format!("{model}: session error: {e}"))?;
    stats.sat_vars = result.report.sat_vars as u64;
    stats.sat_clauses = result.report.sat_clauses as u64;
    stats.conflicts += result.report.solver_stats.conflicts;
    cs.checker
        .absorb(cs.session.proof().expect("proof logging enabled"))
        .map_err(|e| format!("{model}: session proof rejected: {e}"))?;
    if result.observable == Some(false) {
        let core = cs.session.last_core().expect("unsat records a core");
        cs.checker
            .expect_core(core)
            .map_err(|e| format!("{model}: session core rejected: {e}"))?;
    }
    match result.observable {
        Some(o) if o != ground.observable => {
            return Err(format!(
                "{model}: session says observable={o}, enumeration says {}",
                ground.observable
            ));
        }
        None => return Err(format!("{model}: session answered Unknown with no budget")),
        _ => {}
    }
    pool.checkin(key, cs);

    // Scratch model finder on the self-contained problem.
    let problem = sat::scratch_problem_model(test, model);
    let (verdict, report) = ModelFinder::new(Options::default().with_proof_logging())
        .solve(&problem)
        .map_err(|e| format!("{model}: scratch finder type error: {e:?}"))?;
    stats.conflicts += report.solver_stats.conflicts;
    match &verdict {
        Verdict::Sat(_) => {
            if !ground.observable {
                return Err(format!(
                    "{model}: scratch finder says observable, enumeration says not"
                ));
            }
        }
        Verdict::Unsat => {
            if ground.observable {
                return Err(format!(
                    "{model}: scratch finder says not observable, enumeration says observable"
                ));
            }
            let proof = report.proof.as_ref().expect("proof logging enabled");
            drat::certify_unsat(proof, &[])
                .map_err(|e| format!("{model}: scratch DRAT certificate rejected: {e}"))?;
        }
        Verdict::Unknown => {
            return Err(format!(
                "{model}: scratch finder answered Unknown with no budget"
            ))
        }
    }
    Ok((ground.observable, stats))
}

/// Runs one case under both models. `Ok` carries the accumulated stats
/// plus whether the models' verdicts diverged (the distinguishing
/// fragment — counted, never a failure).
pub fn check(
    case: &LitmusCase,
    pool: &SessionPool<PoolKey, CertSession>,
) -> Result<(RoundStats, bool), String> {
    let test = case.to_test();
    let mut stats = RoundStats::default();
    let mut verdicts = [false; 2];
    for (i, model) in ALL_MODELS.into_iter().enumerate() {
        let (observable, s) = check_model(&test, model, pool)?;
        verdicts[i] = observable;
        stats.sat_vars = stats.sat_vars.max(s.sat_vars);
        stats.sat_clauses = stats.sat_clauses.max(s.sat_clauses);
        stats.conflicts += s.conflicts;
    }
    Ok((stats, verdicts[0] != verdicts[1]))
}

/// One fuzz round against a shared session pool: generate from `seed`,
/// check under both models, shrink on failure (shrink candidates get
/// throwaway pools, so a broken shared session cannot mask the minimal
/// case). The `bool` reports cross-model divergence.
///
/// # Errors
///
/// The shrunk [`Disagreement`] when any per-model check fails.
pub fn run_round(
    seed: u64,
    pool: &SessionPool<PoolKey, CertSession>,
) -> Result<(RoundStats, bool), Disagreement> {
    let mut rng = Rng::seed(seed);
    let case = litmusgen::generate(&mut rng);
    match check(&case, pool) {
        Ok(r) => Ok(r),
        Err(what) => {
            let minimal = crate::shrink::shrink(
                case,
                litmusgen::candidates,
                |c| check(c, &SessionPool::new()).is_err(),
                60,
            );
            Err(Disagreement {
                generator: "modelgen",
                seed,
                what,
                shrunk: minimal.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memmodel::Location;
    use ptx::inst::build;

    #[test]
    fn rounds_agree_on_a_seeded_sweep() {
        let pool = SessionPool::new();
        let mut diverged = 0;
        for round in 0..12 {
            let seed = crate::round_seed(0xF00D, "modelgen", round);
            let (_, d) = run_round(seed, &pool).unwrap_or_else(|d| panic!("{d}"));
            diverged += u64::from(d);
        }
        // The pool actually shared per-(model, signature) sessions.
        let (created, reused) = pool.stats();
        assert!(created >= 2, "both models opened sessions");
        assert!(created + reused >= 24);
        let _ = diverged; // any count is legal on a small sweep
    }

    #[test]
    fn the_corr_relaxed_shape_diverges_across_models_without_failing() {
        // The known distinguishing fragment: a relaxed store against two
        // same-location relaxed reads observing new-then-stale. The
        // axiomatic model forbids it (SC-per-Location); the cumulative
        // draft drops Read→Read coherence and allows it. The check must
        // report divergence, not failure.
        let x = Location(0);
        let case = LitmusCase {
            layout_kind: 0,
            threads: vec![
                vec![build::st_relaxed(memmodel::Scope::Sys, x, 1)],
                vec![
                    build::ld_relaxed(memmodel::Scope::Sys, memmodel::Register(0), x),
                    build::ld_relaxed(memmodel::Scope::Sys, memmodel::Register(1), x),
                ],
            ],
            conds: vec![(1, 0, 1), (1, 1, 0)],
        };
        let (_, diverged) = check(&case, &SessionPool::new()).expect("engines agree per model");
        assert!(diverged, "CoRR-relaxed must distinguish the models");
    }
}
