//! `fuzzherd` — the cross-layer differential fuzzing driver.
//!
//! ```text
//! fuzzherd --rounds 200 --seed 7
//! fuzzherd --rounds 50 --seed 7 --jobs 4 --timeout-secs 60 --json
//! ```
//!
//! Each round derives a deterministic seed per generator
//! ([`fuzzkit::round_seed`]) and runs one case from each of the five
//! generators — random CNF against a DPLL oracle, random relational
//! formulas against ground enumeration, random litmus programs against
//! execution enumeration, random barrier/data-dependency programs
//! against the symbolic value encoding, and random litmus programs
//! answered under both PTX consistency models (axiomatic vs the
//! cumulative draft) — as jobs on the workspace's worker-pool harness
//! ([`modelfinder::harness`]). Litmus and barrier rounds share
//! incremental SAT sessions (with their proof checkers) through a
//! [`modelfinder::SessionPool`], exactly like `ptxherd --sat`; model
//! rounds share a second pool keyed by `(model, signature)`.
//! Cross-model verdict divergence in a model round is not a failure —
//! it is counted under `gen.model.fuzz.model_diffs`.
//!
//! Every `Unsat` any engine produces is certified against the
//! independent DRAT checker. On disagreement the round's seed and a
//! shrunk minimal case are printed and the exit code is nonzero;
//! timeouts degrade to `Unknown` records, never hangs.
//!
//! `--stats` prints an observability table after the run — totals plus
//! per-generator counters under `gen.{cnf,relform,litmus,barrier}.`;
//! `--stats-json PATH` writes the snapshot as JSON Lines in the shared
//! `obs` schema. `--trace-out PATH` writes the run's event timeline as
//! Chrome trace-event JSON (per-round `query:*` spans, worker-tagged),
//! loadable in Perfetto.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fuzzkit::litmusgen::CertSession;
use fuzzkit::{
    barriergen, cnf, litmusgen, modelgen, relform, round_seed, Disagreement, RoundStats,
};
use litmus::sat::Signature;
use modelfinder::harness::{run_queries, HarnessOptions, Query, QueryOutput};
use modelfinder::SessionPool;

struct Cli {
    rounds: u64,
    seed: u64,
    jobs: usize,
    timeout_secs: Option<u64>,
    json: bool,
    stats: bool,
    stats_json: Option<String>,
    trace_out: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        rounds: 100,
        seed: 7,
        jobs: 1,
        timeout_secs: None,
        json: false,
        stats: false,
        stats_json: None,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--stats" => cli.stats = true,
            "--stats-json" => {
                let v = it.next().ok_or("--stats-json needs a path")?;
                cli.stats_json = Some(v.clone());
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a path")?;
                cli.trace_out = Some(v.clone());
            }
            "--rounds" => {
                let v = it.next().ok_or("--rounds needs a value")?;
                cli.rounds = v.parse().map_err(|_| format!("bad --rounds value `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cli.seed = parse_seed(v)?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                cli.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                if cli.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--timeout-secs" => {
                let v = it.next().ok_or("--timeout-secs needs a value")?;
                cli.timeout_secs = Some(
                    v.parse()
                        .map_err(|_| format!("bad --timeout-secs value `{v}`"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

fn parse_seed(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("bad --seed value `{v}`"))
}

fn output(
    result: Result<RoundStats, Disagreement>,
    failures: &Mutex<Vec<Disagreement>>,
    obs: &modelfinder::obs::Registry,
) -> QueryOutput {
    obs.add("fuzz.rounds", 1);
    match result {
        Ok(stats) => {
            obs.add("fuzz.sat_vars", stats.sat_vars);
            obs.add("fuzz.sat_clauses", stats.sat_clauses);
            obs.add("fuzz.conflicts", stats.conflicts);
            QueryOutput {
                verdict: "Ok".to_string(),
                sat_vars: stats.sat_vars,
                sat_clauses: stats.sat_clauses,
                conflicts: stats.conflicts,
                path: None,
                detail: None,
            }
        }
        Err(d) => {
            obs.add("fuzz.disagreements", 1);
            let detail = format!("{}: {} (seed {:#018x})", d.generator, d.what, d.seed);
            failures.lock().unwrap().push(d);
            QueryOutput {
                verdict: "Disagree".to_string(),
                detail: Some(detail),
                ..QueryOutput::default()
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("fuzzherd: {e}");
            eprintln!(
                "usage: fuzzherd [--rounds N] [--seed S] [--jobs N] [--timeout-secs S] \
                 [--json] [--stats] [--stats-json PATH] [--trace-out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };

    let pool: Arc<SessionPool<Signature, CertSession>> = Arc::new(SessionPool::new());
    let model_pool: Arc<SessionPool<modelgen::PoolKey, CertSession>> = Arc::new(SessionPool::new());
    let failures: Arc<Mutex<Vec<Disagreement>>> = Arc::new(Mutex::new(Vec::new()));
    let mut queries = Vec::new();
    for round in 0..cli.rounds {
        let f = Arc::clone(&failures);
        let seed = round_seed(cli.seed, "cnf", round);
        queries.push(Query::new(format!("cnf/{round}"), move |ctx| {
            output(cnf::run_round(seed), &f, &ctx.obs)
        }));
        let f = Arc::clone(&failures);
        let seed = round_seed(cli.seed, "relform", round);
        queries.push(Query::new(format!("relform/{round}"), move |ctx| {
            output(relform::run_round(seed), &f, &ctx.obs)
        }));
        let f = Arc::clone(&failures);
        let p = Arc::clone(&pool);
        let seed = round_seed(cli.seed, "litmusgen", round);
        queries.push(Query::new(format!("litmus/{round}"), move |ctx| {
            output(litmusgen::run_round(seed, &p), &f, &ctx.obs)
        }));
        let f = Arc::clone(&failures);
        let p = Arc::clone(&pool);
        let seed = round_seed(cli.seed, "barriergen", round);
        queries.push(Query::new(format!("barrier/{round}"), move |ctx| {
            output(barriergen::run_round(seed, &p), &f, &ctx.obs)
        }));
        let f = Arc::clone(&failures);
        let p = Arc::clone(&model_pool);
        let seed = round_seed(cli.seed, "modelgen", round);
        queries.push(Query::new(format!("model/{round}"), move |ctx| {
            let result = modelgen::run_round(seed, &p).map(|(stats, diverged)| {
                if diverged {
                    ctx.obs.add("fuzz.model_diffs", 1);
                }
                stats
            });
            output(result, &f, &ctx.obs)
        }));
    }

    let stats_wanted = cli.stats || cli.stats_json.is_some();
    let reg = if stats_wanted {
        modelfinder::obs::Registry::new()
    } else {
        modelfinder::obs::Registry::disabled()
    };
    let tracer = if cli.trace_out.is_some() {
        modelfinder::obs::trace::Tracer::for_export()
    } else {
        modelfinder::obs::trace::Tracer::flight_recorder()
    };
    let options = HarnessOptions {
        jobs: cli.jobs,
        timeout: cli.timeout_secs.map(Duration::from_secs),
        obs: reg.clone(),
        trace: tracer.clone(),
        ..HarnessOptions::default()
    };
    let json = cli.json;
    let records = run_queries(queries, &options, |rec| {
        let generator = rec.name.split('/').next().unwrap_or("unknown");
        reg.merge_prefixed(&rec.obs, &format!("gen.{generator}."));
        if json {
            println!("{}", rec.to_json());
        } else if rec.verdict != "Ok" {
            println!(
                "{:<16} {:<9} {:.3}s{}",
                rec.name,
                rec.verdict,
                rec.wall.as_secs_f64(),
                rec.detail
                    .as_deref()
                    .map(|d| format!("  {d}"))
                    .unwrap_or_default()
            );
        }
    });

    let timeouts = records.iter().filter(|r| r.timed_out).count();
    let failures = failures.lock().unwrap();
    let (created, reused) = pool.stats();
    let (m_created, m_reused) = model_pool.stats();
    if !json {
        println!(
            "fuzzherd: {} rounds x 5 generators, {} disagreements, {} timeouts \
             (litmus sessions: {} created, {} reused; model sessions: {} created, {} reused)",
            cli.rounds,
            failures.len(),
            timeouts,
            created,
            reused,
            m_created,
            m_reused
        );
    }
    if stats_wanted {
        let snap = reg.snapshot();
        if let Some(path) = &cli.stats_json {
            if let Err(e) = std::fs::write(path, snap.to_jsonl()) {
                eprintln!("fuzzherd: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if cli.stats {
            print!("{}", snap.render_table());
        }
    }
    if let Some(path) = &cli.trace_out {
        if let Err(e) = std::fs::write(path, tracer.snapshot().to_chrome_json()) {
            eprintln!("fuzzherd: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for d in failures.iter() {
            eprintln!("{d}");
        }
        ExitCode::FAILURE
    }
}
