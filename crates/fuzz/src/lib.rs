//! Cross-layer differential fuzzing for the PTX memory-model stack.
//!
//! Every layer of the workspace has at least two independent ways to
//! answer the same question, and this crate generates random inputs and
//! pits them against each other:
//!
//! * [`cnf`] — random CNF instances (with assumptions): the CDCL solver
//!   in `ptxmm-satsolver` against a naive DPLL oracle, with every `Unsat`
//!   answer certified by the independent DRAT checker and every unsat
//!   core re-checked by the oracle;
//! * [`relform`] — random relational formulas over small universes: the
//!   bounded model finder (scratch and incremental-session paths) against
//!   ground-truth enumeration of every instance through
//!   [`relational::eval_formula`];
//! * [`litmusgen`] — random PTX litmus programs: exhaustive execution
//!   enumeration against the SAT path, both scratch
//!   [`modelfinder::ModelFinder`] problems and pooled incremental
//!   [`litmus::sat::SatSession`]s with incremental proof certification;
//! * [`barriergen`] — random barrier and data-dependency programs
//!   (`bar.sync`/`bar.arrive`, `atom.add`/`exch`/`cas`, `red.add`,
//!   register-operand stores, memory-equality conditions), the same
//!   three-way differential check aimed at the symbolic value layer;
//! * [`modelgen`] — random litmus tests answered under *both* PTX
//!   consistency models (the paper's axiomatic model and the cumulative
//!   draft), three engines per model: per-model engine disagreement is
//!   a failure, cross-model verdict divergence is counted as the known
//!   distinguishing fragment.
//!
//! Failures are deterministic: each round derives from an explicit seed
//! ([`round_seed`]), and a failing case is greedily minimized by
//! [`shrink::shrink`] before being reported as a [`Disagreement`]. The
//! `fuzzherd` binary drives all five generators under the existing
//! worker-pool harness ([`modelfinder::harness`]).

#![warn(missing_docs)]

pub mod barriergen;
pub mod cnf;
pub mod litmusgen;
pub mod modelgen;
pub mod relform;
pub mod shrink;

/// A cross-layer disagreement (or certificate failure) found by a
/// generator round, after shrinking.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Which generator found it (`"cnf"`, `"relform"`, `"litmusgen"`,
    /// `"barriergen"`, `"modelgen"`).
    pub generator: &'static str,
    /// The round seed that reproduces the failure deterministically.
    pub seed: u64,
    /// What went wrong (which engines disagreed, or which certificate
    /// was rejected) — reported for the *original* generated case.
    pub what: String,
    /// The shrunk, minimal failing case, pretty-printed.
    pub shrunk: String,
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} disagreement (seed {:#018x})",
            self.generator, self.seed
        )?;
        writeln!(f, "  {}", self.what)?;
        writeln!(f, "  minimal failing case:")?;
        for line in self.shrunk.lines() {
            writeln!(f, "    {line}")?;
        }
        write!(
            f,
            "  replay with fuzzkit::{}::run_round({:#018x}, ..)",
            self.generator, self.seed
        )
    }
}

/// SAT-pipeline size counters accumulated by a generator round.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundStats {
    /// CNF variables in the round's largest solver.
    pub sat_vars: u64,
    /// CNF clauses in the round's largest solver.
    pub sat_clauses: u64,
    /// Total SAT conflicts spent.
    pub conflicts: u64,
}

/// Derives the deterministic seed for `round` of `generator` under a
/// base seed, decorrelating generators and rounds the way
/// [`testkit::case_seed`] decorrelates property-test cases.
pub fn round_seed(base: u64, generator: &str, round: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in generator.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    testkit::Rng::seed(base ^ h ^ round.rotate_left(32)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(round_seed(7, "cnf", 0), round_seed(7, "cnf", 0));
        assert_ne!(round_seed(7, "cnf", 0), round_seed(7, "cnf", 1));
        assert_ne!(round_seed(7, "cnf", 0), round_seed(7, "relform", 0));
        assert_ne!(round_seed(7, "cnf", 0), round_seed(8, "cnf", 0));
    }
}
