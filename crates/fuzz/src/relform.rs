//! Random relational formulas: the bounded model finder against ground
//! enumeration.
//!
//! The universe is tiny (2–3 atoms) with one binary relation `r` and one
//! unary `s`, both bounded above by their full tuple sets — so *every*
//! instance can be enumerated (≤ 2¹² of them) and the generated formula
//! evaluated on each with [`relational::eval_formula`]. That ground truth
//! is compared against:
//!
//! * a scratch [`modelfinder::ModelFinder`] run with proof logging —
//!   `Sat` witnesses are re-evaluated, `Unsat` proofs certified;
//! * an incremental [`modelfinder::Session`] answering the formula and
//!   then its negation, with the session's append-only proof absorbed by
//!   one [`modelfinder::drat::Checker`] across both queries and each
//!   `Unsat` core certified.
//!
//! Formulas draw from the full AST: the boolean connectives, every
//! multiplicity, subset/equality, the expression algebra including
//! transpose/closure/products, and depth-limited quantifiers.

use modelfinder::{drat, ModelFinder, Options, Problem, Session, Verdict};
use relational::{
    eval_formula, rel, Bounds, Expr, Formula, Instance, RelId, Schema, TupleSet, VarId,
};
use testkit::Rng;

use crate::{Disagreement, RoundStats};

/// A generated case: a universe size and a closed formula over `r`
/// (binary) and `s` (unary).
#[derive(Debug, Clone)]
pub struct RelCase {
    /// Universe size (2 or 3).
    pub universe: usize,
    /// The formula under test.
    pub formula: Formula,
}

impl std::fmt::Display for RelCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "universe {}: {:?}", self.universe, self.formula)
    }
}

/// Declares the fixed two-relation schema.
fn declare() -> (Schema, RelId, RelId) {
    let mut schema = Schema::new();
    let r = schema.relation("r", 2);
    let s = schema.relation("s", 1);
    (schema, r, s)
}

/// Draws a random case.
pub fn generate(rng: &mut Rng) -> RelCase {
    let universe = rng.range(2, 4) as usize;
    let mut gen = Gen {
        rng,
        universe,
        vars: Vec::new(),
        next_var: 0,
    };
    let formula = gen.formula(3);
    RelCase { universe, formula }
}

struct Gen<'a> {
    rng: &'a mut Rng,
    universe: usize,
    vars: Vec<VarId>,
    next_var: u32,
}

impl Gen<'_> {
    fn formula(&mut self, depth: u32) -> Formula {
        let (_, r, s) = declare();
        if depth == 0 {
            return self.atomic(r, s);
        }
        match self.rng.below(8) {
            0 | 1 => self.atomic(r, s),
            2 => self.formula(depth - 1).and(&self.formula(depth - 1)),
            3 => self.formula(depth - 1).or(&self.formula(depth - 1)),
            4 => self.formula(depth - 1).not(),
            5 => self.formula(depth - 1).implies(&self.formula(depth - 1)),
            6 => self.formula(depth - 1).iff(&self.formula(depth - 1)),
            _ => {
                let v = VarId::new(self.next_var);
                self.next_var += 1;
                let domain = self.expr(1, 1);
                self.vars.push(v);
                let body = self.formula(depth - 1);
                self.vars.pop();
                if self.rng.flip() {
                    Formula::for_all(v, domain, body)
                } else {
                    Formula::exists(v, domain, body)
                }
            }
        }
    }

    fn atomic(&mut self, r: RelId, s: RelId) -> Formula {
        let _ = (r, s);
        let kind = self.rng.below(6);
        let a = self.arity();
        match kind {
            0 => self.expr(a, 2).in_(&self.expr(a, 2)),
            1 => self.expr(a, 2).equal(&self.expr(a, 2)),
            2 => self.expr(a, 2).some(),
            3 => self.expr(a, 2).no(),
            4 => self.expr(a, 2).one(),
            _ => self.expr(a, 2).lone(),
        }
    }

    fn arity(&mut self) -> usize {
        if self.rng.flip() {
            1
        } else {
            2
        }
    }

    fn expr(&mut self, arity: usize, depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf(arity);
        }
        match (arity, self.rng.below(8)) {
            (_, 0 | 1) => self.leaf(arity),
            (_, 2) => self
                .expr(arity, depth - 1)
                .union(&self.expr(arity, depth - 1)),
            (_, 3) => self
                .expr(arity, depth - 1)
                .intersect(&self.expr(arity, depth - 1)),
            (_, 4) => self
                .expr(arity, depth - 1)
                .difference(&self.expr(arity, depth - 1)),
            (1, 5) => self.expr(1, depth - 1).join(&self.expr(2, depth - 1)),
            (1, _) => self.expr(2, depth - 1).join(&self.expr(1, depth - 1)),
            (2, 5) => self.expr(1, depth - 1).product(&self.expr(1, depth - 1)),
            (2, 6) => self.expr(2, depth - 1).transpose(),
            (2, _) => {
                let inner = self.expr(2, depth - 1);
                if self.rng.flip() {
                    inner.closure()
                } else {
                    inner.reflexive_closure()
                }
            }
            _ => unreachable!("arities are 1 or 2"),
        }
    }

    fn leaf(&mut self, arity: usize) -> Expr {
        let (_, r, s) = declare();
        let n = self.universe as relational::Atom;
        if arity == 1 {
            if !self.vars.is_empty() && self.rng.chance(0.3) {
                return Expr::Var(*self.rng.choose(&self.vars));
            }
            match self.rng.below(4) {
                0 => rel(s),
                1 => Expr::Univ,
                2 => Expr::None(1),
                _ => {
                    let atoms = (0..n).filter(|_| self.rng.chance(0.4));
                    Expr::constant(TupleSet::from_atoms(atoms))
                }
            }
        } else {
            match self.rng.below(4) {
                0 | 1 => rel(r),
                2 => Expr::Iden,
                _ => {
                    let pairs: Vec<(relational::Atom, relational::Atom)> =
                        (0..n).flat_map(|a| (0..n).map(move |b| (a, b))).collect();
                    let chosen = pairs.into_iter().filter(|_| self.rng.chance(0.3));
                    Expr::constant(TupleSet::from_pairs(chosen))
                }
            }
        }
    }
}

/// Evaluates the formula on every instance within the bounds; returns
/// `(some instance satisfies it, some instance falsifies it)`.
fn oracle(case: &RelCase) -> Result<(bool, bool), String> {
    let (schema, r, s) = declare();
    let n = case.universe;
    let r_slots: Vec<(relational::Atom, relational::Atom)> = (0..n as relational::Atom)
        .flat_map(|a| (0..n as relational::Atom).map(move |b| (a, b)))
        .collect();
    let bits = r_slots.len() + n;
    let (mut any_true, mut any_false) = (false, false);
    for mask in 0u32..1 << bits {
        let r_val = TupleSet::from_pairs(
            r_slots
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &p)| p),
        );
        let s_val = TupleSet::from_atoms(
            (0..n)
                .filter(|i| mask & (1 << (r_slots.len() + i)) != 0)
                .map(|i| i as relational::Atom),
        );
        let mut inst = Instance::empty(&schema, n);
        inst.set(r, r_val);
        inst.set(s, s_val);
        match eval_formula(&schema, &inst, &case.formula) {
            Ok(true) => any_true = true,
            Ok(false) => any_false = true,
            Err(e) => return Err(format!("ground evaluator type error: {e:?}")),
        }
        if any_true && any_false {
            break;
        }
    }
    Ok((any_true, any_false))
}

/// Full bounds for the case's universe.
fn bounds(schema: &Schema, r: RelId, s: RelId, n: usize) -> Bounds {
    let mut b = Bounds::new(schema, n);
    b.bound_upper(r, relational::full_set(2, n));
    b.bound_upper(s, relational::full_set(1, n));
    b
}

/// Runs one case through the scratch finder and an incremental session
/// (formula, then its negation), checking every verdict against the
/// ground enumeration and certifying every proof.
pub fn check(case: &RelCase) -> Result<RoundStats, String> {
    let (any_true, any_false) = oracle(case)?;
    let (schema, r, s) = declare();
    let bnds = bounds(&schema, r, s, case.universe);
    let mut stats = RoundStats::default();

    // Scratch finder on the formula itself.
    let problem = Problem {
        schema: schema.clone(),
        bounds: bnds.clone(),
        formula: case.formula.clone(),
    };
    let (verdict, report) = ModelFinder::new(Options::default().with_proof_logging())
        .solve(&problem)
        .map_err(|e| format!("scratch finder type error: {e:?}"))?;
    stats.sat_vars = report.sat_vars as u64;
    stats.sat_clauses = report.sat_clauses as u64;
    stats.conflicts += report.solver_stats.conflicts;
    match &verdict {
        Verdict::Sat(inst) => {
            if !any_true {
                return Err("scratch finder answered Sat, enumeration finds no model".to_string());
            }
            match eval_formula(&schema, inst, &case.formula) {
                Ok(true) => {}
                Ok(false) => {
                    return Err("scratch finder's witness does not satisfy the formula".to_string())
                }
                Err(e) => return Err(format!("witness evaluation type error: {e:?}")),
            }
        }
        Verdict::Unsat => {
            if any_true {
                return Err("scratch finder answered Unsat, enumeration finds a model".to_string());
            }
            let proof = report.proof.as_ref().expect("proof logging enabled");
            drat::certify_unsat(proof, &[])
                .map_err(|e| format!("scratch DRAT certificate rejected: {e}"))?;
        }
        Verdict::Unknown => {
            return Err("scratch finder answered Unknown with no budget".to_string())
        }
    }

    // Incremental session: the formula, then its negation, one checker.
    let mut session = Session::new(
        &schema,
        &bnds,
        &Formula::True,
        Options::default().with_proof_logging(),
    )
    .map_err(|e| format!("session type error: {e:?}"))?;
    let mut checker = drat::Checker::new();
    let queries = [
        (case.formula.clone(), any_true, "formula"),
        (case.formula.not(), any_false, "negation"),
    ];
    for (f, expected_sat, label) in queries {
        let (v, rep) = session
            .solve(&f)
            .map_err(|e| format!("session type error on {label}: {e:?}"))?;
        stats.conflicts += rep.solver_stats.conflicts;
        checker
            .absorb(session.proof().expect("proof logging enabled"))
            .map_err(|e| format!("session proof rejected on {label}: {e}"))?;
        match &v {
            Verdict::Sat(inst) => {
                if !expected_sat {
                    return Err(format!(
                        "session answered Sat on {label}, enumeration finds no model"
                    ));
                }
                match eval_formula(&schema, inst, &f) {
                    Ok(true) => {}
                    Ok(false) => {
                        return Err(format!("session witness does not satisfy the {label}"))
                    }
                    Err(e) => return Err(format!("witness evaluation type error: {e:?}")),
                }
            }
            Verdict::Unsat => {
                if expected_sat {
                    return Err(format!(
                        "session answered Unsat on {label}, enumeration finds a model"
                    ));
                }
                let core = session.last_core().expect("unsat records a core");
                checker
                    .expect_core(core)
                    .map_err(|e| format!("session core rejected on {label}: {e}"))?;
            }
            Verdict::Unknown => {
                return Err(format!(
                    "session answered Unknown on {label} with no budget"
                ))
            }
        }
    }
    Ok(stats)
}

/// One fuzz round: generate from `seed`, check, shrink on failure.
///
/// # Errors
///
/// The shrunk [`Disagreement`] when any check fails.
pub fn run_round(seed: u64) -> Result<RoundStats, Disagreement> {
    let mut rng = Rng::seed(seed);
    let case = generate(&mut rng);
    match check(&case) {
        Ok(stats) => Ok(stats),
        Err(what) => {
            let minimal = crate::shrink::shrink(case, candidates, |c| check(c).is_err(), 200);
            Err(Disagreement {
                generator: "relform",
                seed,
                what,
                shrunk: minimal.to_string(),
            })
        }
    }
}

/// Reduction step: shrink the universe, or replace the formula by one of
/// its immediate subformulas (quantifier bodies are skipped — they may
/// have free variables).
fn candidates(case: &RelCase) -> Vec<RelCase> {
    let mut out = Vec::new();
    if case.universe > 2 {
        out.push(RelCase {
            universe: case.universe - 1,
            formula: case.formula.clone(),
        });
    }
    for sub in subformulas(&case.formula) {
        out.push(RelCase {
            universe: case.universe,
            formula: sub,
        });
    }
    out
}

fn subformulas(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::Not(a) => vec![(**a).clone()],
        Formula::And(fs) | Formula::Or(fs) => {
            let mut out: Vec<Formula> = fs.clone();
            if fs.len() > 1 {
                for i in 0..fs.len() {
                    let rest: Vec<Formula> = fs
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, g)| g.clone())
                        .collect();
                    out.push(if matches!(f, Formula::And(_)) {
                        Formula::and_all(rest)
                    } else {
                        Formula::or_all(rest)
                    });
                }
            }
            out
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => vec![(**a).clone(), (**b).clone()],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_agrees_on_known_formulas() {
        let (_, r, _) = declare();
        let taut = RelCase {
            universe: 2,
            formula: rel(r).equal(&rel(r)),
        };
        assert_eq!(oracle(&taut).unwrap(), (true, false));
        let contingent = RelCase {
            universe: 2,
            formula: rel(r).some(),
        };
        assert_eq!(oracle(&contingent).unwrap(), (true, true));
        let contradiction = RelCase {
            universe: 2,
            formula: rel(r).some().and(&rel(r).no()),
        };
        assert_eq!(oracle(&contradiction).unwrap(), (false, true));
    }

    #[test]
    fn rounds_agree_on_a_seeded_sweep() {
        for round in 0..24 {
            let seed = crate::round_seed(0xF00D, "relform", round);
            run_round(seed).unwrap_or_else(|d| panic!("{d}"));
        }
    }
}
