//! Differential property tests: the dense bit-matrix relations used by
//! the enumeration engines (`memmodel::RelMat`) against the sparse tuple
//! sets used by the relational/SAT engine (`relational::TupleSet`). The
//! two representations back the two independent evaluation engines, so
//! their algebra must agree exactly.

use memmodel::RelMat;
use relational::TupleSet;
use testkit::{forall, Rng};

const N: usize = 6;

fn gen_pairs(rng: &mut Rng) -> Vec<(usize, usize)> {
    rng.vec_of(0, 14, |r| (r.index(N), r.index(N)))
}

fn to_relmat(pairs: &[(usize, usize)]) -> RelMat {
    RelMat::from_pairs(N, pairs.iter().copied())
}

fn to_tupleset(pairs: &[(usize, usize)]) -> TupleSet {
    TupleSet::from_pairs(pairs.iter().map(|&(a, b)| (a as u32, b as u32)))
}

fn back(m: &RelMat) -> TupleSet {
    let mut ts = TupleSet::empty(2);
    for (a, b) in m.pairs() {
        ts.insert(relational::Tuple::new(vec![a as u32, b as u32]));
    }
    ts
}

#[test]
fn union_agrees() {
    forall("union_agrees", 256, |rng| {
        let (a, b) = (gen_pairs(rng), gen_pairs(rng));
        assert_eq!(
            back(&to_relmat(&a).union(&to_relmat(&b))),
            to_tupleset(&a).union(&to_tupleset(&b))
        );
    });
}

#[test]
fn intersect_agrees() {
    forall("intersect_agrees", 256, |rng| {
        let (a, b) = (gen_pairs(rng), gen_pairs(rng));
        assert_eq!(
            back(&to_relmat(&a).intersect(&to_relmat(&b))),
            to_tupleset(&a).intersect(&to_tupleset(&b))
        );
    });
}

#[test]
fn difference_agrees() {
    forall("difference_agrees", 256, |rng| {
        let (a, b) = (gen_pairs(rng), gen_pairs(rng));
        assert_eq!(
            back(&to_relmat(&a).difference(&to_relmat(&b))),
            to_tupleset(&a).difference(&to_tupleset(&b))
        );
    });
}

#[test]
fn compose_agrees_with_join() {
    forall("compose_agrees_with_join", 256, |rng| {
        let (a, b) = (gen_pairs(rng), gen_pairs(rng));
        assert_eq!(
            back(&to_relmat(&a).compose(&to_relmat(&b))),
            to_tupleset(&a).join(&to_tupleset(&b))
        );
    });
}

#[test]
fn transpose_agrees() {
    forall("transpose_agrees", 256, |rng| {
        let a = gen_pairs(rng);
        assert_eq!(
            back(&to_relmat(&a).transpose()),
            to_tupleset(&a).transpose()
        );
    });
}

#[test]
fn closure_agrees() {
    forall("closure_agrees", 256, |rng| {
        let a = gen_pairs(rng);
        assert_eq!(
            back(&to_relmat(&a).transitive_closure()),
            to_tupleset(&a).closure()
        );
    });
}

#[test]
fn reflexive_closure_agrees() {
    forall("reflexive_closure_agrees", 256, |rng| {
        let a = gen_pairs(rng);
        assert_eq!(
            back(&to_relmat(&a).reflexive_transitive_closure()),
            to_tupleset(&a).reflexive_closure(N)
        );
    });
}

#[test]
fn predicates_agree() {
    forall("predicates_agree", 256, |rng| {
        let a = gen_pairs(rng);
        let m = to_relmat(&a);
        let ts = to_tupleset(&a);
        // Irreflexivity.
        let ts_irr = TupleSet::iden(N).intersect(&ts).is_empty();
        assert_eq!(m.is_irreflexive(), ts_irr);
        // Acyclicity.
        let ts_acyclic = TupleSet::iden(N).intersect(&ts.closure()).is_empty();
        assert_eq!(m.is_acyclic(), ts_acyclic);
        // Transitivity.
        let ts_trans = ts.join(&ts).is_subset(&ts);
        assert_eq!(m.is_transitive(), ts_trans);
        // Cardinality.
        assert_eq!(m.count(), ts.len());
    });
}

/// The fixpoint used for PTX `obs` agrees with a direct TupleSet
/// computation.
#[test]
fn obs_fixpoint_agrees() {
    forall("obs_fixpoint_agrees", 256, |rng| {
        let (base, step) = (gen_pairs(rng), gen_pairs(rng));
        let m = to_relmat(&base).fixpoint(|cur| cur.compose(&to_relmat(&step)).compose(cur));
        // TupleSet version: iterate until stable.
        let step_ts = to_tupleset(&step);
        let mut cur = to_tupleset(&base);
        loop {
            let next = cur.union(&cur.join(&step_ts).join(&cur));
            if next == cur {
                break;
            }
            cur = next;
        }
        assert_eq!(back(&m), cur);
    });
}
