//! The GPU execution hierarchy: threads within CTAs within GPUs within a
//! system, and the PTX scope-inclusion test built on it.
//!
//! Mirrors Table 18 of the PTX documentation (Table 1 in the paper): a
//! `.cta`-scoped operation includes the threads of the executing thread's
//! CTA, `.gpu` the threads of its device, and `.sys` every thread,
//! including host threads.

use crate::ids::ThreadId;

/// A scope qualifier on a strong PTX operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// `.cta`: threads in the same cooperative thread array.
    Cta,
    /// `.gpu`: threads on the same compute device.
    Gpu,
    /// `.sys`: all threads in the program, on all devices and the host.
    Sys,
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scope::Cta => write!(f, "cta"),
            Scope::Gpu => write!(f, "gpu"),
            Scope::Sys => write!(f, "sys"),
        }
    }
}

/// Where a thread executes: which CTA on which GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// The device index.
    pub gpu: u32,
    /// The CTA index, unique across the whole system.
    pub cta: u32,
}

/// The placement of every thread in the system: the concrete scope tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemLayout {
    placements: Vec<Placement>,
}

impl SystemLayout {
    /// Builds a layout from explicit placements (indexed by thread id).
    ///
    /// # Panics
    ///
    /// Panics if two threads share a CTA index but disagree on the GPU —
    /// CTA indices are global, so a CTA lives on exactly one device.
    pub fn new(placements: Vec<Placement>) -> SystemLayout {
        for (i, a) in placements.iter().enumerate() {
            for b in placements.iter().skip(i + 1) {
                if a.cta == b.cta {
                    assert_eq!(a.gpu, b.gpu, "CTA {} spans two GPUs", a.cta);
                }
            }
        }
        SystemLayout { placements }
    }

    /// All `n` threads in one CTA on one GPU.
    pub fn single_cta(n: usize) -> SystemLayout {
        SystemLayout::new(vec![Placement { gpu: 0, cta: 0 }; n])
    }

    /// Each of the `n` threads in its own CTA, all on one GPU.
    pub fn cta_per_thread(n: usize) -> SystemLayout {
        SystemLayout::new(
            (0..n as u32)
                .map(|i| Placement { gpu: 0, cta: i })
                .collect(),
        )
    }

    /// Each thread in its own CTA on its own GPU.
    pub fn gpu_per_thread(n: usize) -> SystemLayout {
        SystemLayout::new(
            (0..n as u32)
                .map(|i| Placement { gpu: i, cta: i })
                .collect(),
        )
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.placements.len()
    }

    /// The placement of a thread.
    pub fn placement(&self, t: ThreadId) -> Placement {
        self.placements[t.0 as usize]
    }

    /// Whether two threads share a CTA.
    pub fn same_cta(&self, a: ThreadId, b: ThreadId) -> bool {
        self.placements[a.0 as usize].cta == self.placements[b.0 as usize].cta
    }

    /// Whether two threads share a GPU.
    pub fn same_gpu(&self, a: ThreadId, b: ThreadId) -> bool {
        self.placements[a.0 as usize].gpu == self.placements[b.0 as usize].gpu
    }

    /// Whether an operation executed by `executor` with scope `scope`
    /// includes thread `other` (PTX §8.6: the scope instance is centred on
    /// the executing thread).
    pub fn scope_includes(&self, scope: Scope, executor: ThreadId, other: ThreadId) -> bool {
        match scope {
            Scope::Cta => self.same_cta(executor, other),
            Scope::Gpu => self.same_gpu(executor, other),
            Scope::Sys => true,
        }
    }

    /// Whether two scoped operations are *mutually inclusive*: each
    /// operation's scope includes the other's executing thread. This is the
    /// scope half of PTX moral strength and the `incl` relation of the
    /// scoped RC11 model.
    pub fn mutually_inclusive(
        &self,
        scope_a: Scope,
        thread_a: ThreadId,
        scope_b: Scope,
        thread_b: ThreadId,
    ) -> bool {
        self.scope_includes(scope_a, thread_a, thread_b)
            && self.scope_includes(scope_b, thread_b, thread_a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn single_cta_includes_everything() {
        let l = SystemLayout::single_cta(3);
        for s in [Scope::Cta, Scope::Gpu, Scope::Sys] {
            assert!(l.scope_includes(s, t(0), t(2)));
        }
    }

    #[test]
    fn cta_per_thread_excludes_cta_scope() {
        let l = SystemLayout::cta_per_thread(2);
        assert!(!l.scope_includes(Scope::Cta, t(0), t(1)));
        assert!(l.scope_includes(Scope::Gpu, t(0), t(1)));
        assert!(l.scope_includes(Scope::Sys, t(0), t(1)));
    }

    #[test]
    fn gpu_per_thread_needs_sys() {
        let l = SystemLayout::gpu_per_thread(2);
        assert!(!l.scope_includes(Scope::Cta, t(0), t(1)));
        assert!(!l.scope_includes(Scope::Gpu, t(0), t(1)));
        assert!(l.scope_includes(Scope::Sys, t(0), t(1)));
    }

    #[test]
    fn mutual_inclusion_is_asymmetric_in_general() {
        // Thread 0 and 1 in different CTAs on one GPU. A gpu-scoped op by
        // thread 0 includes thread 1, but a cta-scoped op by thread 1 does
        // not include thread 0 — so the pair is not mutually inclusive.
        let l = SystemLayout::cta_per_thread(2);
        assert!(l.scope_includes(Scope::Gpu, t(0), t(1)));
        assert!(!l.scope_includes(Scope::Cta, t(1), t(0)));
        assert!(!l.mutually_inclusive(Scope::Gpu, t(0), Scope::Cta, t(1)));
        assert!(l.mutually_inclusive(Scope::Gpu, t(0), Scope::Gpu, t(1)));
    }

    #[test]
    #[should_panic]
    fn cta_spanning_gpus_rejected() {
        SystemLayout::new(vec![
            Placement { gpu: 0, cta: 0 },
            Placement { gpu: 1, cta: 0 },
        ]);
    }

    #[test]
    fn scope_includes_own_thread_always() {
        let l = SystemLayout::gpu_per_thread(3);
        for s in [Scope::Cta, Scope::Gpu, Scope::Sys] {
            assert!(l.scope_includes(s, t(1), t(1)));
        }
    }
}
