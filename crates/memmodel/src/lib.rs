//! Shared scaffolding for axiomatic memory models.
//!
//! Every model in this workspace (PTX, scoped RC11, TSO) builds on the same
//! primitives:
//!
//! * identifier newtypes ([`ThreadId`], [`Location`], [`Value`], …);
//! * the GPU execution hierarchy and PTX scope-inclusion test
//!   ([`SystemLayout`], [`Scope`]);
//! * dense bit-matrix relations with fixpoint computation ([`RelMat`]) for
//!   the enumeration-based axiom checkers;
//! * exhaustive enumeration of runtime-determined witnesses
//!   ([`enumerate::enumerate_partial_orders`] for PTX's partial coherence
//!   and Fence-SC orders, [`enumerate::enumerate_total_orders`] for
//!   RC11/TSO coherence, [`enumerate::Odometer`] for reads-from choices).
//!
//! # Examples
//!
//! ```
//! use memmodel::{RelMat, Scope, SystemLayout, ThreadId};
//!
//! // Two threads in different CTAs on the same GPU.
//! let layout = SystemLayout::cta_per_thread(2);
//! assert!(!layout.scope_includes(Scope::Cta, ThreadId(0), ThreadId(1)));
//! assert!(layout.scope_includes(Scope::Gpu, ThreadId(0), ThreadId(1)));
//!
//! // Derived relations are bit-matrix fixpoints.
//! let po = RelMat::from_pairs(3, [(0, 1), (1, 2)]);
//! assert!(po.transitive_closure().get(0, 2));
//! ```

#![warn(missing_docs)]

pub mod enumerate;
pub mod ids;
pub mod relmat;
pub mod scope;

pub use enumerate::{enumerate_partial_orders, enumerate_total_orders, Odometer};
pub use ids::{BarrierId, EventId, Location, Register, ThreadId, Value};
pub use relmat::RelMat;
pub use scope::{Placement, Scope, SystemLayout};
