//! Dense bit-matrix binary relations over event indices.
//!
//! The enumeration-based axiom checkers compute derived relations (`obs`,
//! `sw`, `cause`, `hb`, …) as fixpoints over these matrices; all operations
//! are word-parallel.

use std::fmt;

/// A binary relation over `{0, …, n-1}` stored as a bit matrix.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RelMat {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl RelMat {
    /// The empty relation over `n` elements.
    pub fn new(n: usize) -> RelMat {
        let words_per_row = n.div_ceil(64).max(1);
        RelMat {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// The identity relation over `n` elements.
    pub fn identity(n: usize) -> RelMat {
        let mut m = RelMat::new(n);
        for i in 0..n {
            m.set(i, i);
        }
        m
    }

    /// Builds a relation from pairs.
    pub fn from_pairs<I: IntoIterator<Item = (usize, usize)>>(n: usize, pairs: I) -> RelMat {
        let mut m = RelMat::new(n);
        for (i, j) in pairs {
            m.set(i, j);
        }
        m
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Adds the pair `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] |= 1u64 << (j % 64);
    }

    /// Removes the pair `(i, j)`.
    #[inline]
    pub fn clear(&mut self, i: usize, j: usize) {
        self.bits[i * self.words_per_row + j / 64] &= !(1u64 << (j % 64));
    }

    /// Membership test.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Number of pairs in the relation.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates all pairs in row-major order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n)
            .flat_map(move |i| (0..self.n).filter_map(move |j| self.get(i, j).then_some((i, j))))
    }

    /// Union, in place.
    pub fn union_with(&mut self, other: &RelMat) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Union.
    #[must_use]
    pub fn union(&self, other: &RelMat) -> RelMat {
        let mut m = self.clone();
        m.union_with(other);
        m
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(&self, other: &RelMat) -> RelMat {
        debug_assert_eq!(self.n, other.n);
        let mut m = self.clone();
        for (a, b) in m.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
        m
    }

    /// Difference.
    #[must_use]
    pub fn difference(&self, other: &RelMat) -> RelMat {
        debug_assert_eq!(self.n, other.n);
        let mut m = self.clone();
        for (a, b) in m.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
        m
    }

    /// Relational composition `self ; other` (boolean matrix product).
    #[must_use]
    pub fn compose(&self, other: &RelMat) -> RelMat {
        debug_assert_eq!(self.n, other.n);
        let mut out = RelMat::new(self.n);
        for i in 0..self.n {
            let out_row = i * self.words_per_row;
            for k in 0..self.n {
                if self.get(i, k) {
                    let other_row = k * self.words_per_row;
                    for w in 0..self.words_per_row {
                        out.bits[out_row + w] |= other.bits[other_row + w];
                    }
                }
            }
        }
        out
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> RelMat {
        let mut out = RelMat::new(self.n);
        for (i, j) in self.pairs() {
            out.set(j, i);
        }
        out
    }

    /// Irreflexive transitive closure (bit-parallel Warshall).
    #[must_use]
    pub fn transitive_closure(&self) -> RelMat {
        let mut m = self.clone();
        for k in 0..self.n {
            let k_row: Vec<u64> =
                m.bits[k * self.words_per_row..(k + 1) * self.words_per_row].to_vec();
            for i in 0..self.n {
                if m.get(i, k) {
                    let row = i * self.words_per_row;
                    for (w, &kw) in k_row.iter().enumerate() {
                        m.bits[row + w] |= kw;
                    }
                }
            }
        }
        m
    }

    /// Reflexive transitive closure.
    #[must_use]
    pub fn reflexive_transitive_closure(&self) -> RelMat {
        self.transitive_closure().union(&RelMat::identity(self.n))
    }

    /// Whether no element relates to itself.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.get(i, i))
    }

    /// Whether the relation has no cycles (its closure is irreflexive).
    pub fn is_acyclic(&self) -> bool {
        self.transitive_closure().is_irreflexive()
    }

    /// Whether the relation is transitive.
    pub fn is_transitive(&self) -> bool {
        self.compose(self).difference(self).is_empty()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &RelMat) -> bool {
        self.difference(other).is_empty()
    }

    /// Keeps only pairs `(i, j)` with `pred(i, j)`.
    #[must_use]
    pub fn filter<F: Fn(usize, usize) -> bool>(&self, pred: F) -> RelMat {
        RelMat::from_pairs(self.n, self.pairs().filter(|&(i, j)| pred(i, j)))
    }

    /// The relation restricted to pairs whose endpoints are both in `set`.
    #[must_use]
    pub fn restrict_to(&self, set: &[bool]) -> RelMat {
        self.filter(|i, j| set[i] && set[j])
    }

    /// The least fixpoint of `f` starting from `self`: repeatedly applies
    /// `f` and unions until stable. `f` must be monotone for this to be a
    /// true least fixpoint.
    pub fn fixpoint<F: Fn(&RelMat) -> RelMat>(&self, f: F) -> RelMat {
        let mut cur = self.clone();
        loop {
            let next = cur.union(&f(&cur));
            if next == cur {
                return cur;
            }
            cur = next;
        }
    }
}

impl fmt::Debug for RelMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelMat{{n={}, pairs=[", self.n)?;
        for (k, (i, j)) in self.pairs().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({i},{j})")?;
        }
        write!(f, "]}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut m = RelMat::new(70); // cross the word boundary
        m.set(0, 65);
        m.set(69, 0);
        assert!(m.get(0, 65));
        assert!(m.get(69, 0));
        assert!(!m.get(65, 0));
        m.clear(0, 65);
        assert!(!m.get(0, 65));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn compose_matches_manual() {
        let a = RelMat::from_pairs(4, [(0, 1), (1, 2)]);
        let b = RelMat::from_pairs(4, [(1, 3), (2, 0)]);
        let c = a.compose(&b);
        assert_eq!(c, RelMat::from_pairs(4, [(0, 3), (1, 0)]));
    }

    #[test]
    fn closure_of_chain_and_cycle() {
        let chain = RelMat::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let c = chain.transitive_closure();
        assert!(c.get(0, 3));
        assert!(c.is_irreflexive());
        assert!(chain.is_acyclic());

        let cycle = RelMat::from_pairs(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(!cycle.is_acyclic());
        assert!(cycle.transitive_closure().get(0, 0));
    }

    #[test]
    fn transpose_and_subset() {
        let a = RelMat::from_pairs(3, [(0, 1), (1, 2)]);
        assert_eq!(a.transpose(), RelMat::from_pairs(3, [(1, 0), (2, 1)]));
        assert!(a.is_subset(&a.transitive_closure()));
        assert!(!a.transitive_closure().is_subset(&a));
    }

    #[test]
    fn fixpoint_computes_obs_style_recursion() {
        // obs = base ∪ obs;step;obs — as used by the PTX model.
        let base = RelMat::from_pairs(5, [(0, 1), (2, 3)]);
        let step = RelMat::from_pairs(5, [(1, 2)]);
        let obs = base.fixpoint(|cur| cur.compose(&step).compose(cur));
        assert!(obs.get(0, 3)); // 0→1 ;(1→2); 2→3
        assert!(obs.get(0, 1));
        assert!(!obs.get(1, 2));
    }

    #[test]
    fn transitivity_check() {
        assert!(RelMat::from_pairs(3, [(0, 1), (1, 2), (0, 2)]).is_transitive());
        assert!(!RelMat::from_pairs(3, [(0, 1), (1, 2)]).is_transitive());
    }

    #[test]
    fn filter_and_restrict() {
        let a = RelMat::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let evens = a.filter(|i, j| i % 2 == 0 && j % 2 == 1);
        assert_eq!(evens, RelMat::from_pairs(4, [(0, 1), (2, 3)]));
        let set = [true, true, false, false];
        assert_eq!(a.restrict_to(&set), RelMat::from_pairs(4, [(0, 1)]));
    }
}
