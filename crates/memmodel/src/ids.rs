//! Identifier newtypes shared by all memory models in the workspace.

use std::fmt;

/// A hardware thread of execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A memory location. The models in this workspace are single-width (the
/// paper leaves mixed-size behaviour undefined), so a location is an opaque
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location(pub u32);

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: &[&str] = &["x", "y", "z", "w", "u", "v"];
        match NAMES.get(self.0 as usize) {
            Some(n) => write!(f, "{n}"),
            None => write!(f, "loc{}", self.0),
        }
    }
}

/// A value stored to or read from memory. All locations start at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub u64);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A per-thread register written by loads and read by stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Register(pub u32);

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An execution-barrier resource (PTX `bar`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bar{}", self.0)
    }
}

/// An event index within an execution (dense, includes init events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}
