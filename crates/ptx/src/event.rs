//! Expansion of PTX programs into memory events.
//!
//! Each `ld`/`st`/`fence`/`bar` becomes one event; each `atom`/`red` is
//! split into a read event and a write event linked by the `rmw` relation,
//! following the modeling approach of RC11 that the paper adopts (§3.5.3).
//! One initialization write per location (holding zero) is added, belonging
//! to no thread and coherence-ordered before every other write to that
//! location.

use memmodel::{BarrierId, Location, Register, RelMat, Scope, ThreadId, Value};

use crate::inst::{BarKind, Instruction, LoadSem, Operand, Program, RmwOp, StoreSem};

/// The kind of an expanded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A memory read (including the read half of an RMW).
    Read,
    /// A memory write (including the write half of an RMW and init writes).
    Write,
    /// A memory fence.
    Fence,
    /// A CTA execution barrier operation.
    Barrier,
}

/// One event of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dense event index.
    pub id: usize,
    /// Executing thread; `None` for init writes.
    pub thread: Option<ThreadId>,
    /// Event kind.
    pub kind: EventKind,
    /// Accessed location, for memory events.
    pub loc: Option<Location>,
    /// Scope qualifier (meaningful only for strong operations).
    pub scope: Scope,
    /// Whether the operation is *strong* (paper §8.4): any fence, or a
    /// memory operation qualified `.relaxed`/`.acquire`/`.release`/
    /// `.acq_rel`. Weak loads/stores and init writes are not strong.
    pub strong: bool,
    /// Acquire semantics (`ld.acquire`, acquire side of an RMW or fence).
    pub acquire: bool,
    /// Release semantics (`st.release`, release side of an RMW or fence).
    pub release: bool,
    /// Whether this is a `fence.sc`.
    pub sc_fence: bool,
    /// Barrier resource and kind, for barrier events.
    pub barrier: Option<(BarrierId, BarKind)>,
    /// The other half of an RMW (read ↔ write).
    pub rmw_partner: Option<usize>,
    /// Destination register, for reads that write one.
    pub dst: Option<Register>,
    /// Data operand, for writes.
    pub src: Option<Operand>,
    /// RMW operation, for RMW halves.
    pub rmw_op: Option<RmwOp>,
    /// Provenance: (thread index, instruction index).
    pub instr: Option<(usize, usize)>,
    /// Whether this is an initialization write.
    pub is_init: bool,
}

impl Event {
    fn blank(id: usize) -> Event {
        Event {
            id,
            thread: None,
            kind: EventKind::Fence,
            loc: None,
            scope: Scope::Sys,
            strong: false,
            acquire: false,
            release: false,
            sc_fence: false,
            barrier: None,
            rmw_partner: None,
            dst: None,
            src: None,
            rmw_op: None,
            instr: None,
            is_init: false,
        }
    }

    /// Whether this is a memory operation (read or write).
    pub fn is_memory(&self) -> bool {
        matches!(self.kind, EventKind::Read | EventKind::Write)
    }

    /// Whether this event overlaps another (same location; the paper's
    /// mixed-size generality is out of scope, §3.2).
    pub fn overlaps(&self, other: &Event) -> bool {
        match (self.loc, other.loc) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

/// A program expanded into events, with the static relations that do not
/// depend on the execution witness.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// All events; init writes come first, then thread events in order.
    pub events: Vec<Event>,
    /// Program order (transitive, intra-thread; init writes unordered).
    pub po: RelMat,
    /// Syntactic dependencies (data via registers, and the read half of an
    /// RMW to its value-dependent write half) — the `dep` of the
    /// No-Thin-Air axiom.
    pub dep: RelMat,
    /// `rmw` edges (read half → write half).
    pub rmw: RelMat,
    /// Barrier synchronization (`syncbarrier`): an arriving barrier
    /// operation to each *waiting* barrier operation on the same barrier in
    /// the same CTA, across threads (§8.8.4).
    pub syncbarrier: RelMat,
    /// For each event with a register data operand, the event that set the
    /// register (the po-latest earlier writer of that register in the same
    /// thread), used for value evaluation.
    pub operand_setter: Vec<Option<usize>>,
    /// The last setter event of each `(thread, register)` pair, defining
    /// final register values.
    pub final_setters: Vec<((ThreadId, Register), usize)>,
    /// Indices of read events.
    pub reads: Vec<usize>,
    /// Indices of write events, by location, init write first.
    pub writes_by_loc: Vec<(Location, Vec<usize>)>,
    /// Indices of `fence.sc` events.
    pub sc_fences: Vec<usize>,
}

impl Expansion {
    /// The init write for `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is not used by the program.
    pub fn init_write(&self, loc: Location) -> usize {
        self.writes_by_loc
            .iter()
            .find(|(l, _)| *l == loc)
            .map(|(_, ws)| ws[0])
            .expect("location not in program")
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the expansion has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Expands a program into events (see module docs).
pub fn expand(program: &Program) -> Expansion {
    let locations = program.locations();
    let mut events: Vec<Event> = Vec::new();

    // Init writes first.
    for &loc in &locations {
        let mut e = Event::blank(events.len());
        e.kind = EventKind::Write;
        e.loc = Some(loc);
        e.is_init = true;
        e.src = Some(Operand::Imm(Value(0)));
        events.push(e);
    }

    // Thread events.
    let mut thread_events: Vec<Vec<usize>> = vec![Vec::new(); program.num_threads()];
    for (tid, instrs) in program.threads.iter().enumerate() {
        for (iid, instr) in instrs.iter().enumerate() {
            let new_ids = expand_instruction(&mut events, tid, iid, instr);
            thread_events[tid].extend(new_ids);
        }
    }

    let n = events.len();

    // Program order: transitive over each thread's event list.
    let mut po = RelMat::new(n);
    for evs in &thread_events {
        for i in 0..evs.len() {
            for j in (i + 1)..evs.len() {
                po.set(evs[i], evs[j]);
            }
        }
    }

    // Dependencies: track the last setter of each register per thread.
    let mut dep = RelMat::new(n);
    let mut operand_setter: Vec<Option<usize>> = vec![None; n];
    let mut final_setters: Vec<((ThreadId, Register), usize)> = Vec::new();
    for (tid, evs) in thread_events.iter().enumerate() {
        let mut last_setter: std::collections::HashMap<Register, usize> =
            std::collections::HashMap::new();
        for &e in evs {
            // Uses: a write event consuming a register operand.
            if events[e].kind == EventKind::Write {
                if let Some(Operand::Reg(r)) = events[e].src {
                    if let Some(&setter) = last_setter.get(&r) {
                        dep.set(setter, e);
                        operand_setter[e] = Some(setter);
                    }
                }
                // RMW write halves whose stored value depends on the old
                // value (add, cas) depend on their read half.
                if let (Some(op), Some(partner)) = (events[e].rmw_op, events[e].rmw_partner) {
                    if matches!(op, RmwOp::Add | RmwOp::Cas { .. }) {
                        dep.set(partner, e);
                    }
                }
            }
            // Defs.
            if let Some(r) = events[e].dst {
                last_setter.insert(r, e);
            }
        }
        for (r, e) in last_setter {
            final_setters.push(((ThreadId(tid as u32), r), e));
        }
    }
    final_setters.sort();

    // rmw edges.
    let mut rmw = RelMat::new(n);
    for e in &events {
        if e.kind == EventKind::Read {
            if let Some(w) = e.rmw_partner {
                rmw.set(e.id, w);
            }
        }
    }

    // Barrier synchronization: arrive-type op → waiting op, same barrier,
    // same CTA, different threads.
    let mut syncbarrier = RelMat::new(n);
    for a in &events {
        let Some((bar_a, _kind_a)) = a.barrier else {
            continue;
        };
        for b in &events {
            let Some((bar_b, kind_b)) = b.barrier else {
                continue;
            };
            if a.id == b.id || bar_a != bar_b || !kind_b.waits() {
                continue;
            }
            let (Some(ta), Some(tb)) = (a.thread, b.thread) else {
                continue;
            };
            if ta != tb && program.layout.same_cta(ta, tb) {
                syncbarrier.set(a.id, b.id);
            }
        }
    }

    let reads: Vec<usize> = events
        .iter()
        .filter(|e| e.kind == EventKind::Read)
        .map(|e| e.id)
        .collect();
    let writes_by_loc: Vec<(Location, Vec<usize>)> = locations
        .iter()
        .map(|&loc| {
            let ws: Vec<usize> = events
                .iter()
                .filter(|e| e.kind == EventKind::Write && e.loc == Some(loc))
                .map(|e| e.id)
                .collect();
            (loc, ws)
        })
        .collect();
    let sc_fences: Vec<usize> = events.iter().filter(|e| e.sc_fence).map(|e| e.id).collect();

    Expansion {
        events,
        po,
        dep,
        rmw,
        syncbarrier,
        operand_setter,
        final_setters,
        reads,
        writes_by_loc,
        sc_fences,
    }
}

fn expand_instruction(
    events: &mut Vec<Event>,
    tid: usize,
    iid: usize,
    instr: &Instruction,
) -> Vec<usize> {
    let thread = Some(ThreadId(tid as u32));
    let provenance = Some((tid, iid));
    match *instr {
        Instruction::Ld {
            sem,
            scope,
            dst,
            loc,
        } => {
            let mut e = Event::blank(events.len());
            e.thread = thread;
            e.kind = EventKind::Read;
            e.loc = Some(loc);
            e.scope = scope;
            e.strong = sem != LoadSem::Weak;
            e.acquire = sem == LoadSem::Acquire;
            e.dst = Some(dst);
            e.instr = provenance;
            events.push(e);
            vec![events.len() - 1]
        }
        Instruction::St {
            sem,
            scope,
            loc,
            src,
        } => {
            let mut e = Event::blank(events.len());
            e.thread = thread;
            e.kind = EventKind::Write;
            e.loc = Some(loc);
            e.scope = scope;
            e.strong = sem != StoreSem::Weak;
            e.release = sem == StoreSem::Release;
            e.src = Some(src);
            e.instr = provenance;
            events.push(e);
            vec![events.len() - 1]
        }
        Instruction::Atom {
            sem,
            scope,
            dst,
            loc,
            op,
            src,
        } => expand_rmw(
            events,
            thread,
            provenance,
            sem,
            scope,
            Some(dst),
            loc,
            op,
            src,
        ),
        Instruction::Red {
            sem,
            scope,
            loc,
            op,
            src,
        } => expand_rmw(events, thread, provenance, sem, scope, None, loc, op, src),
        Instruction::Fence { sem, scope } => {
            let mut e = Event::blank(events.len());
            e.thread = thread;
            e.kind = EventKind::Fence;
            e.scope = scope;
            e.strong = true;
            e.acquire = sem.is_acquire();
            e.release = sem.is_release();
            e.sc_fence = sem == crate::inst::FenceSem::Sc;
            e.instr = provenance;
            events.push(e);
            vec![events.len() - 1]
        }
        Instruction::Bar { kind, bar } => {
            let mut e = Event::blank(events.len());
            e.thread = thread;
            e.kind = EventKind::Barrier;
            e.barrier = Some((bar, kind));
            e.instr = provenance;
            events.push(e);
            vec![events.len() - 1]
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn expand_rmw(
    events: &mut Vec<Event>,
    thread: Option<ThreadId>,
    provenance: Option<(usize, usize)>,
    sem: crate::inst::AtomSem,
    scope: Scope,
    dst: Option<Register>,
    loc: Location,
    op: RmwOp,
    src: Operand,
) -> Vec<usize> {
    use crate::inst::AtomSem;
    let read_id = events.len();
    let write_id = read_id + 1;

    let mut r = Event::blank(read_id);
    r.thread = thread;
    r.kind = EventKind::Read;
    r.loc = Some(loc);
    r.scope = scope;
    r.strong = true;
    r.acquire = matches!(sem, AtomSem::Acquire | AtomSem::AcqRel);
    r.rmw_partner = Some(write_id);
    r.dst = dst;
    r.rmw_op = Some(op);
    r.instr = provenance;
    events.push(r);

    let mut w = Event::blank(write_id);
    w.thread = thread;
    w.kind = EventKind::Write;
    w.loc = Some(loc);
    w.scope = scope;
    w.strong = true;
    w.release = matches!(sem, AtomSem::Release | AtomSem::AcqRel);
    w.rmw_partner = Some(read_id);
    w.src = Some(src);
    w.rmw_op = Some(op);
    w.instr = provenance;
    events.push(w);

    vec![read_id, write_id]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::build::*;
    use crate::inst::AtomSem;
    use memmodel::SystemLayout;

    fn mp_program() -> Program {
        Program::new(
            vec![
                vec![
                    st_weak(Location(0), 1),
                    st_release(Scope::Gpu, Location(1), 1),
                ],
                vec![
                    ld_acquire(Scope::Gpu, Register(0), Location(1)),
                    ld_weak(Register(1), Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        )
    }

    #[test]
    fn mp_expansion_shape() {
        let x = expand(&mp_program());
        // 2 init writes + 4 instruction events.
        assert_eq!(x.len(), 6);
        assert_eq!(x.reads.len(), 2);
        assert_eq!(x.writes_by_loc.len(), 2);
        // po within threads only, transitive.
        assert!(x.po.get(2, 3)); // st.weak → st.release
        assert!(x.po.get(4, 5));
        assert!(!x.po.get(3, 4));
        assert!(!x.po.get(0, 2)); // init writes not po-ordered
    }

    #[test]
    fn init_writes_are_weak_and_zero() {
        let x = expand(&mp_program());
        let init = &x.events[x.init_write(Location(0))];
        assert!(init.is_init);
        assert!(!init.strong);
        assert_eq!(init.src, Some(Operand::Imm(Value(0))));
        assert_eq!(init.thread, None);
    }

    #[test]
    fn atom_splits_into_rmw_pair() {
        let p = Program::new(
            vec![vec![atom_add(
                AtomSem::AcqRel,
                Scope::Gpu,
                Register(0),
                Location(0),
                1,
            )]],
            SystemLayout::single_cta(1),
        );
        let x = expand(&p);
        assert_eq!(x.len(), 3); // init + R + W
        let r = &x.events[1];
        let w = &x.events[2];
        assert_eq!(r.kind, EventKind::Read);
        assert_eq!(w.kind, EventKind::Write);
        assert_eq!(r.rmw_partner, Some(2));
        assert_eq!(w.rmw_partner, Some(1));
        assert!(r.acquire && w.release);
        assert!(x.rmw.get(1, 2));
        // add's stored value depends on its read.
        assert!(x.dep.get(1, 2));
        assert!(x.po.get(1, 2));
    }

    #[test]
    fn register_data_dependency() {
        // LB shape: r0 = load y; store x = r0.
        let p = Program::new(
            vec![vec![
                ld_weak(Register(0), Location(1)),
                st_weak_reg(Location(0), Register(0)),
            ]],
            SystemLayout::single_cta(1),
        );
        let x = expand(&p);
        let load = x.reads[0];
        let store = x.writes_by_loc[0].1[1];
        assert!(x.dep.get(load, store));
    }

    #[test]
    fn barrier_sync_edges() {
        let p = Program::new(
            vec![
                vec![bar_sync(BarrierId(0))],
                vec![bar_sync(BarrierId(0))],
                vec![bar_arrive(BarrierId(0))],
            ],
            SystemLayout::single_cta(3),
        );
        let x = expand(&p);
        let (b0, b1, b2) = (0, 1, 2);
        assert!(x.syncbarrier.get(b0, b1));
        assert!(x.syncbarrier.get(b1, b0));
        // arrive synchronizes-with syncs, but nothing synchronizes-with an
        // arrive (it does not wait).
        assert!(x.syncbarrier.get(b2, b0));
        assert!(!x.syncbarrier.get(b0, b2));
    }

    #[test]
    fn barrier_requires_same_cta() {
        let p = Program::new(
            vec![vec![bar_sync(BarrierId(0))], vec![bar_sync(BarrierId(0))]],
            SystemLayout::cta_per_thread(2),
        );
        let x = expand(&p);
        assert!(x.syncbarrier.is_empty());
    }
}
