//! Candidate executions and the PTX derived relations (paper Figure 4).
//!
//! A [`Candidate`] pairs a program expansion with the runtime-determined
//! witnesses: the reads-from choice, the (partial!) coherence order, and
//! the Fence-SC order. [`Relations::compute`] derives moral strength,
//! observation order, synchronizes-with, and causality order exactly as
//! the paper defines them.

use memmodel::{Location, RelMat, SystemLayout, Value};

use crate::event::{EventKind, Expansion};
use crate::inst::Operand;

/// A candidate execution witness over an [`Expansion`].
#[derive(Debug, Clone)]
pub struct Candidate {
    /// For each read (indexed as in `expansion.reads`), the event id of the
    /// write it reads from.
    pub rf_source: Vec<usize>,
    /// Coherence order: a strict partial order per location (unioned),
    /// with init writes ordered before all other writes to their location.
    pub co: RelMat,
    /// Fence-SC order: a strict partial order over `fence.sc` events that
    /// relates every morally strong pair.
    pub sc: RelMat,
}

impl Candidate {
    /// The reads-from relation as a matrix (write → read).
    pub fn rf_matrix(&self, expansion: &Expansion) -> RelMat {
        let mut rf = RelMat::new(expansion.len());
        for (i, &r) in expansion.reads.iter().enumerate() {
            rf.set(self.rf_source[i], r);
        }
        rf
    }
}

/// The values carried by each event of a candidate execution, plus final
/// state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueMap {
    /// Value read or written by each event (None for fences/barriers).
    pub values: Vec<Option<Value>>,
}

/// Evaluates event values under a reads-from choice.
///
/// Returns `None` when evaluation gets stuck, which happens exactly when
/// `rf ∪ dep` is cyclic — i.e. the candidate violates No-Thin-Air and has
/// no well-defined values.
pub fn evaluate_values(expansion: &Expansion, candidate: &Candidate) -> Option<ValueMap> {
    let n = expansion.len();
    let mut values: Vec<Option<Value>> = vec![None; n];
    // rf source per read event id.
    let mut rf_of: Vec<Option<usize>> = vec![None; n];
    for (i, &r) in expansion.reads.iter().enumerate() {
        rf_of[r] = Some(candidate.rf_source[i]);
    }

    let mut progress = true;
    while progress {
        progress = false;
        for e in 0..n {
            if values[e].is_some() {
                continue;
            }
            let ev = &expansion.events[e];
            let new = match ev.kind {
                EventKind::Fence | EventKind::Barrier => continue,
                EventKind::Read => {
                    let w = rf_of[e].expect("read has rf source");
                    values[w]
                }
                EventKind::Write => {
                    let operand = match ev.src {
                        Some(Operand::Imm(v)) => Some(v),
                        Some(Operand::Reg(_)) => match expansion.operand_setter[e] {
                            Some(setter) => values[setter],
                            // A register read before any setter: zero.
                            None => Some(Value(0)),
                        },
                        None => Some(Value(0)),
                    };
                    match (ev.rmw_op, ev.rmw_partner) {
                        (Some(op), Some(read_half)) => {
                            // Exch does not need the old value; Add/Cas do.
                            match (op, operand) {
                                (crate::inst::RmwOp::Exch, Some(v)) => Some(v),
                                (_, Some(v)) => values[read_half].map(|old| op.apply(old, v)),
                                (_, None) => None,
                            }
                        }
                        _ => operand,
                    }
                }
            };
            if new.is_some() {
                values[e] = new;
                progress = true;
            }
        }
    }

    // Every memory event must have a value; otherwise rf ∪ dep was cyclic.
    let complete = expansion
        .events
        .iter()
        .all(|ev| !ev.is_memory() || values[ev.id].is_some());
    complete.then_some(ValueMap { values })
}

/// The derived relations of the PTX memory model (Figure 4), computed for
/// one candidate execution.
#[derive(Debug, Clone)]
pub struct Relations {
    /// Moral strength (paper §8.6): program-order-related pairs, or pairs
    /// of strong operations with mutually inclusive scopes that overlap if
    /// both are memory operations. Symmetric, irreflexive.
    pub morally_strong: RelMat,
    /// Reads-from (write → read).
    pub rf: RelMat,
    /// From-reads: `rf⁻¹ ; co`.
    pub fr: RelMat,
    /// Program order restricted to overlapping memory events.
    pub po_loc: RelMat,
    /// Observation order (§8.8.2): `(ms ∩ rf) ∪ (obs ; rmw ; obs)`.
    pub obs: RelMat,
    /// Release patterns: release op → the strong write communicating it.
    pub pattern_rel: RelMat,
    /// Acquire patterns: the strong read → the acquire op consuming it.
    pub pattern_acq: RelMat,
    /// Synchronizes-with (§8.7): morally strong release→acquire chains,
    /// barrier synchronization, and Fence-SC order.
    pub sw: RelMat,
    /// Base causality order (§8.8.5): `(po? ; sw ; po?)⁺`.
    pub cause_base: RelMat,
    /// Causality order: `cause_base ∪ (obs ; (cause_base ∪ po_loc))`.
    pub cause: RelMat,
}

impl Relations {
    /// Computes all derived relations for `candidate`.
    pub fn compute(
        expansion: &Expansion,
        layout: &SystemLayout,
        candidate: &Candidate,
    ) -> Relations {
        let n = expansion.len();
        let events = &expansion.events;

        let morally_strong = morally_strong(expansion, layout);

        let rf = candidate.rf_matrix(expansion);
        let fr = rf.transpose().compose(&candidate.co);

        // po_loc: program order between overlapping memory events.
        let po_loc = expansion.po.filter(|i, j| {
            events[i].is_memory() && events[j].is_memory() && events[i].overlaps(&events[j])
        });

        // obs = (ms ∩ rf) ∪ (obs ; rmw ; obs), least fixpoint.
        let obs_base = morally_strong.intersect(&rf);
        let obs = obs_base.fixpoint(|cur| cur.compose(&expansion.rmw).compose(cur));

        // pattern_rel = ([W≥REL] ; po_loc? ; [W]) ∪ ([F≥REL] ; po ; [W]).
        let diag_w = diag(n, |i| events[i].kind == EventKind::Write);
        let diag_w_rel = diag(n, |i| {
            events[i].kind == EventKind::Write && events[i].release
        });
        let diag_f_rel = diag(n, |i| {
            events[i].kind == EventKind::Fence && events[i].release
        });
        let po_loc_opt = po_loc.union(&RelMat::identity(n));
        let pattern_rel = diag_w_rel
            .compose(&po_loc_opt)
            .compose(&diag_w)
            .union(&diag_f_rel.compose(&expansion.po).compose(&diag_w));

        // pattern_acq = ([R] ; po_loc? ; [R≥ACQ]) ∪ ([R] ; po ; [F≥ACQ]).
        let diag_r = diag(n, |i| events[i].kind == EventKind::Read);
        let diag_r_acq = diag(n, |i| {
            events[i].kind == EventKind::Read && events[i].acquire
        });
        let diag_f_acq = diag(n, |i| {
            events[i].kind == EventKind::Fence && events[i].acquire
        });
        let pattern_acq = diag_r
            .compose(&po_loc_opt)
            .compose(&diag_r_acq)
            .union(&diag_r.compose(&expansion.po).compose(&diag_f_acq));

        // sw = (ms ∩ (pattern_rel ; obs ; pattern_acq)) ∪ syncbarrier ∪ sc.
        let chain = pattern_rel.compose(&obs).compose(&pattern_acq);
        let sw = morally_strong
            .intersect(&chain)
            .union(&expansion.syncbarrier)
            .union(&candidate.sc);

        // cause_base = (po? ; sw ; po?)⁺.
        let po_opt = expansion.po.union(&RelMat::identity(n));
        let cause_base = po_opt.compose(&sw).compose(&po_opt).transitive_closure();

        // cause = cause_base ∪ (obs ; (cause_base ∪ po_loc)).
        let cause = cause_base.union(&obs.compose(&cause_base.union(&po_loc)));

        Relations {
            morally_strong,
            rf,
            fr,
            po_loc,
            obs,
            pattern_rel,
            pattern_acq,
            sw,
            cause_base,
            cause,
        }
    }
}

/// Moral strength (paper §8.6), which depends only on the program, not on
/// the execution witness: two distinct operations are morally strong if
/// they are related in program order, or if each is strong, each specifies
/// a scope including the other's thread, and (when both are memory
/// operations) they overlap.
pub fn morally_strong(expansion: &Expansion, layout: &SystemLayout) -> RelMat {
    let n = expansion.len();
    let mut ms = RelMat::new(n);
    for a in &expansion.events {
        for b in &expansion.events {
            if a.id == b.id {
                continue;
            }
            let po_related = expansion.po.get(a.id, b.id) || expansion.po.get(b.id, a.id);
            let strong_pair = a.strong
                && b.strong
                && match (a.thread, b.thread) {
                    (Some(ta), Some(tb)) => layout.mutually_inclusive(a.scope, ta, b.scope, tb),
                    _ => false,
                }
                && (!(a.is_memory() && b.is_memory()) || a.overlaps(b));
            if po_related || strong_pair {
                ms.set(a.id, b.id);
            }
        }
    }
    ms
}

/// The diagonal relation over elements satisfying `pred` (the `[s]`
/// bracket of the paper).
pub fn diag<F: Fn(usize) -> bool>(n: usize, pred: F) -> RelMat {
    RelMat::from_pairs(n, (0..n).filter(|&i| pred(i)).map(|i| (i, i)))
}

/// The fixed part of the coherence order: every init write precedes every
/// other write to its location.
pub fn init_co_edges(expansion: &Expansion) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for (_, writes) in &expansion.writes_by_loc {
        let init = writes[0];
        debug_assert!(expansion.events[init].is_init);
        for &w in &writes[1..] {
            edges.push((init, w));
        }
    }
    edges
}

/// The final value(s) a location may settle to: the values of co-maximal
/// writes. In race-free executions there is exactly one; racy executions
/// may admit several (the model leaves the final value undefined).
pub fn final_values(
    expansion: &Expansion,
    candidate: &Candidate,
    values: &ValueMap,
    loc: Location,
) -> Vec<Value> {
    let writes = expansion
        .writes_by_loc
        .iter()
        .find(|(l, _)| *l == loc)
        .map(|(_, ws)| ws.as_slice())
        .unwrap_or(&[]);
    let mut out: Vec<Value> = writes
        .iter()
        .filter(|&&w| writes.iter().all(|&w2| !candidate.co.get(w, w2)))
        .filter_map(|&w| values.values[w])
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::expand;
    use crate::inst::build::*;
    use crate::inst::Program;
    use memmodel::{Register, Scope, SystemLayout};

    /// MP: T0: st.weak x,1; st.release.gpu y,1. T1: ld.acquire.gpu y; ld.weak x.
    fn mp() -> (Expansion, SystemLayout) {
        let p = Program::new(
            vec![
                vec![
                    st_weak(Location(0), 1),
                    st_release(Scope::Gpu, Location(1), 1),
                ],
                vec![
                    ld_acquire(Scope::Gpu, Register(0), Location(1)),
                    ld_weak(Register(1), Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let layout = p.layout.clone();
        (expand(&p), layout)
    }

    /// The MP candidate where the acquire observes the release (r0 = 1)
    /// but the data load misses (r1 = 0).
    fn mp_forbidden_candidate(x: &Expansion) -> Candidate {
        // events: 0=init_x, 1=init_y, 2=Wx, 3=Wrel_y, 4=Racq_y, 5=Rx
        let co = RelMat::from_pairs(x.len(), init_co_edges(x));
        Candidate {
            rf_source: vec![3, 0], // Racq_y reads Wrel_y; Rx reads init_x
            co,
            sc: RelMat::new(x.len()),
        }
    }

    #[test]
    fn mp_moral_strength() {
        let (x, layout) = mp();
        let c = mp_forbidden_candidate(&x);
        let rel = Relations::compute(&x, &layout, &c);
        // The release store and acquire load are both strong at gpu scope
        // on the same GPU and overlap: morally strong.
        assert!(rel.morally_strong.get(3, 4));
        // po-related events are morally strong even when weak.
        assert!(rel.morally_strong.get(2, 3));
        // Weak Rx vs strong Wx in another thread: not morally strong.
        assert!(!rel.morally_strong.get(2, 5));
    }

    #[test]
    fn mp_synchronization_chain() {
        let (x, layout) = mp();
        let c = mp_forbidden_candidate(&x);
        let rel = Relations::compute(&x, &layout, &c);
        assert!(rel.obs.get(3, 4), "release observed by acquire");
        assert!(rel.pattern_rel.get(3, 3), "release is its own pattern");
        assert!(rel.pattern_acq.get(4, 4));
        assert!(rel.sw.get(3, 4), "synchronizes-with");
        assert!(rel.cause_base.get(2, 5), "Wx causes Rx through sw");
        assert!(rel.cause.get(2, 5));
    }

    #[test]
    fn values_propagate_through_rf() {
        let (x, _) = mp();
        let c = mp_forbidden_candidate(&x);
        let vm = evaluate_values(&x, &c).unwrap();
        assert_eq!(vm.values[4], Some(Value(1))); // read of release store
        assert_eq!(vm.values[5], Some(Value(0))); // read of init
    }

    #[test]
    fn thin_air_cycle_fails_evaluation() {
        // LB with data dependencies both ways: r0=x; y=r0 || r1=y; x=r1.
        let p = Program::new(
            vec![
                vec![
                    ld_weak(Register(0), Location(0)),
                    st_weak_reg(Location(1), Register(0)),
                ],
                vec![
                    ld_weak(Register(1), Location(1)),
                    st_weak_reg(Location(0), Register(1)),
                ],
            ],
            SystemLayout::single_cta(2),
        );
        let x = expand(&p);
        // events: 0=init_x,1=init_y,2=Rx,3=Wy,4=Ry,5=Wx
        let co = RelMat::from_pairs(x.len(), init_co_edges(&x));
        let cyclic = Candidate {
            rf_source: vec![5, 3], // Rx reads Wx, Ry reads Wy: value cycle
            co,
            sc: RelMat::new(x.len()),
        };
        assert!(evaluate_values(&x, &cyclic).is_none());
    }

    #[test]
    fn final_values_respect_co() {
        let p = Program::new(
            vec![vec![st_weak(Location(0), 1), st_weak(Location(0), 2)]],
            SystemLayout::single_cta(1),
        );
        let x = expand(&p);
        // events: 0=init, 1=W1, 2=W2. co: init→both, W1→W2.
        let mut co = RelMat::from_pairs(x.len(), init_co_edges(&x));
        co.set(1, 2);
        let c = Candidate {
            rf_source: vec![],
            co,
            sc: RelMat::new(x.len()),
        };
        let vm = evaluate_values(&x, &c).unwrap();
        assert_eq!(final_values(&x, &c, &vm, Location(0)), vec![Value(2)]);
    }
}
