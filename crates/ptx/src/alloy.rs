//! The PTX memory model as bounded relational constraints.
//!
//! This is the paper's §5.2: the same axioms as [`crate::axioms`], but
//! expressed in the Alloy-style relational language of `ptxmm-relational`
//! so the Kodkod-style model finder can search over *all programs and
//! executions up to a bound* — the engine behind the mapping-correctness
//! experiments (paper Figure 17).
//!
//! The vocabulary is deliberately free-standing: the caller declares the
//! relations (over whatever universe layout it uses) and this module
//! derives moral strength, observation order, causality, and the six
//! axioms from them. The `ptxmm-mapping` crate instantiates two copies of
//! event structure (scoped C++ and PTX) in one universe and reuses these
//! definitions for the PTX side.

use relational::{Expr, Formula, Schema, VarGen};

/// The declared relations of a PTX event universe.
///
/// `ev` is the set of *live* PTX events (callers may bound more atoms than
/// a given instance uses). All other sets are constrained within `ev` by
/// [`PtxVocab::well_formed`]. `same_cta` / `same_gpu` are reflexive,
/// symmetric constants describing the fixed thread layout.
#[derive(Debug, Clone)]
pub struct PtxVocab {
    /// Live events.
    pub ev: Expr,
    /// Read events.
    pub read: Expr,
    /// Write events.
    pub write: Expr,
    /// Fence events.
    pub fence: Expr,
    /// Execution-barrier events (`bar.sync` / `bar.arrive`).
    pub barrier: Expr,
    /// Strong operations (any fence; relaxed/acquire/release memory ops).
    pub strong: Expr,
    /// Acquire semantics (acquire reads, acquire-side fences).
    pub acq: Expr,
    /// Release semantics (release writes, release-side fences).
    pub rel: Expr,
    /// `fence.sc` events.
    pub sc_fence: Expr,
    /// Events qualified `.cta`.
    pub scope_cta: Expr,
    /// Events qualified `.gpu`.
    pub scope_gpu: Expr,
    /// Events qualified `.sys`.
    pub scope_sys: Expr,
    /// Event → location (memory events only).
    pub loc: Expr,
    /// Event → thread.
    pub thread: Expr,
    /// Program order (strict total order per thread).
    pub po: Expr,
    /// Reads-from (write → read).
    pub rf: Expr,
    /// Coherence order (strict partial order on overlapping writes).
    pub co: Expr,
    /// Fence-SC order.
    pub sc: Expr,
    /// RMW pairing (read half → write half).
    pub rmw: Expr,
    /// Barrier synchronization edges (§8.7): arriving barrier event →
    /// waiting barrier event on another thread of the same CTA with the
    /// same logical barrier id. A static relation: which arrivals pair
    /// with which waits is determined by the program, not the execution.
    pub syncbarrier: Expr,
    /// Thread × Thread: same CTA (reflexive symmetric constant).
    pub same_cta: Expr,
    /// Thread × Thread: same GPU (reflexive symmetric constant).
    pub same_gpu: Expr,
    /// The set of all threads.
    pub threads: Expr,
}

impl PtxVocab {
    /// Declares a fresh PTX vocabulary in `schema` with the given name
    /// prefix. Layout constants (`same_cta`, `same_gpu`, `threads`) are
    /// declared as relations the caller must bound exactly.
    pub fn declare(schema: &mut Schema, prefix: &str) -> PtxVocab {
        let mut r =
            |name: &str, arity| Expr::Rel(schema.relation(&format!("{prefix}{name}"), arity));
        PtxVocab {
            ev: r("ev", 1),
            read: r("read", 1),
            write: r("write", 1),
            fence: r("fence", 1),
            barrier: r("barrier", 1),
            strong: r("strong", 1),
            acq: r("acq", 1),
            rel: r("rel", 1),
            sc_fence: r("sc_fence", 1),
            scope_cta: r("scope_cta", 1),
            scope_gpu: r("scope_gpu", 1),
            scope_sys: r("scope_sys", 1),
            loc: r("loc", 2),
            thread: r("thread", 2),
            po: r("po", 2),
            rf: r("rf", 2),
            co: r("co", 2),
            sc: r("sc", 2),
            rmw: r("rmw", 2),
            syncbarrier: r("syncbarrier", 2),
            same_cta: r("same_cta", 2),
            same_gpu: r("same_gpu", 2),
            threads: r("threads", 1),
        }
    }

    /// Memory events: reads and writes.
    pub fn memory(&self) -> Expr {
        self.read.union(&self.write)
    }

    /// Same-location pairs of memory events ("overlap", §3.2). Includes
    /// the diagonal: an operation overlaps itself, which matters for the
    /// Coherence axiom when `cause` has a reflexive write pair.
    pub fn overlap(&self) -> Expr {
        self.loc.join(&self.loc.transpose())
    }

    /// Scope inclusion: `(a, b)` when `a`'s scope includes `b`'s thread.
    pub fn inclusion(&self) -> Expr {
        let via = |scope: &Expr, same: &Expr| -> Expr {
            bracket(scope).join(&self.thread.join(same).join(&self.thread.transpose()))
        };
        let all_threads = self.threads.product(&self.threads);
        via(&self.scope_cta, &self.same_cta)
            .union(&via(&self.scope_gpu, &self.same_gpu))
            .union(&via(&self.scope_sys, &all_threads))
    }

    /// Morally strong pairs (§8.6): program-order related, or both strong
    /// with mutually inclusive scopes, overlapping if both are memory
    /// operations. Moral strength relates *distinct* operations, so the
    /// diagonal is removed.
    pub fn morally_strong(&self) -> Expr {
        let incl = self.inclusion();
        let mutual = incl.intersect(&incl.transpose());
        let strong_pair = bracket(&self.strong)
            .join(&mutual)
            .join(&bracket(&self.strong));
        let mem = self.memory();
        let both_memory = mem.product(&mem);
        let non_overlapping_memory = both_memory.difference(&self.overlap());
        let strong_ok = strong_pair.difference(&non_overlapping_memory);
        self.po
            .union(&self.po.transpose())
            .union(&strong_ok)
            .difference(&Expr::Iden)
    }

    /// From-reads: `rf⁻¹ ; co`.
    pub fn fr(&self) -> Expr {
        self.rf.transpose().join(&self.co)
    }

    /// Program order restricted to overlapping memory events.
    pub fn po_loc(&self) -> Expr {
        self.po.intersect(&self.overlap())
    }

    /// Observation order (§8.8.2): `(ms ∩ rf) ; ((rmw ; (ms ∩ rf))*)` —
    /// the closed form of the recursive `obs = (ms∩rf) ∪ obs;rmw;obs`.
    pub fn obs(&self) -> Expr {
        let base = self.morally_strong().intersect(&self.rf);
        base.join(&self.rmw.join(&base).reflexive_closure())
    }

    /// Release patterns (§8.7): `([W∧rel] ; po_loc? ; [W]) ∪ ([F∧rel] ; po ; [W])`.
    pub fn pattern_rel(&self) -> Expr {
        let w_rel = bracket(&self.write.intersect(&self.rel));
        let f_rel = bracket(&self.fence.intersect(&self.rel));
        let w = bracket(&self.write);
        w_rel
            .join(&self.po_loc().optional())
            .join(&w)
            .union(&f_rel.join(&self.po).join(&w))
    }

    /// Acquire patterns (§8.7): `([R] ; po_loc? ; [R∧acq]) ∪ ([R] ; po ; [F∧acq])`.
    pub fn pattern_acq(&self) -> Expr {
        let r = bracket(&self.read);
        let r_acq = bracket(&self.read.intersect(&self.acq));
        let f_acq = bracket(&self.fence.intersect(&self.acq));
        r.join(&self.po_loc().optional())
            .join(&r_acq)
            .union(&r.join(&self.po).join(&f_acq))
    }

    /// Synchronizes-with (§8.7):
    /// `(ms ∩ (pattern_rel ; obs ; pattern_acq)) ∪ syncbarrier ∪ sc`.
    pub fn sw(&self) -> Expr {
        let chain = self
            .pattern_rel()
            .join(&self.obs())
            .join(&self.pattern_acq());
        self.morally_strong()
            .intersect(&chain)
            .union(&self.syncbarrier)
            .union(&self.sc)
    }

    /// Base causality (§8.8.5): `(po? ; sw ; po?)⁺`.
    pub fn cause_base(&self) -> Expr {
        self.po
            .optional()
            .join(&self.sw())
            .join(&self.po.optional())
            .closure()
    }

    /// Causality (§8.8.5): `cause_base ∪ (obs ; (cause_base ∪ po_loc))`.
    pub fn cause(&self) -> Expr {
        let cb = self.cause_base();
        cb.union(&self.obs().join(&cb.union(&self.po_loc())))
    }

    /// Structural well-formedness of the vocabulary: kind/flag/scope
    /// partitions, functional `loc`/`thread`, `po` a union of per-thread
    /// total orders, `rf` functional reads-from, `co` a legal coherence
    /// witness, `sc` a legal Fence-SC witness, `rmw` same-location strong
    /// pairs.
    #[allow(clippy::vec_init_then_push)] // the pushes are grouped by axiom, with commentary
    pub fn well_formed(&self, fresh: &mut VarGen) -> Formula {
        let ev = &self.ev;
        let mem = self.memory();
        let mut fs = Vec::new();

        // Kinds partition the live events.
        fs.push(partition(
            ev,
            &[&self.read, &self.write, &self.fence, &self.barrier],
        ));
        // Scopes partition the live events.
        fs.push(partition(
            ev,
            &[&self.scope_cta, &self.scope_gpu, &self.scope_sys],
        ));
        // Flags: acq on reads/fences, rel on writes/fences, sc_fence on
        // fences; flags imply strength.
        fs.push(self.acq.in_(&self.read.union(&self.fence)));
        fs.push(self.rel.in_(&self.write.union(&self.fence)));
        fs.push(self.sc_fence.in_(&self.fence));
        fs.push(self.acq.in_(&self.strong));
        fs.push(self.rel.in_(&self.strong));
        fs.push(self.fence.in_(&self.strong));
        fs.push(self.strong.in_(ev));
        // sc fences have both acquire and release semantics.
        fs.push(self.sc_fence.in_(&self.acq));
        fs.push(self.sc_fence.in_(&self.rel));

        // loc: a function on memory events, nothing else.
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            mem.clone(),
            Expr::Var(v).join(&self.loc).one(),
        ));
        fs.push(self.loc.join(&Expr::Univ).in_(&mem));
        // thread: a function on live events.
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            ev.clone(),
            Expr::Var(v).join(&self.thread).one(),
        ));
        fs.push(self.thread.join(&Expr::Univ).in_(ev));
        fs.push(Expr::Univ.join(&self.thread).in_(&self.threads));

        // po: strict partial order, total over same-thread pairs, only
        // same-thread pairs.
        let same_thread = self
            .thread
            .join(&self.thread.transpose())
            .difference(&Expr::Iden);
        fs.push(relational::patterns::strict_partial_order(&self.po));
        fs.push(self.po.in_(&same_thread));
        fs.push(same_thread.in_(&self.po.union(&self.po.transpose())));

        // rf: write→read, same location, each read from at most one write.
        fs.push(self.rf.in_(&self.write.product(&self.read)));
        fs.push(self.rf.in_(&self.overlap()));
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            self.read.clone(),
            self.rf.join(&Expr::Var(v)).lone(),
        ));

        // co: strict partial order on overlapping writes; morally strong
        // overlapping writes must be related.
        fs.push(relational::patterns::strict_partial_order(&self.co));
        fs.push(
            self.co
                .in_(&self.write.product(&self.write).intersect(&self.overlap())),
        );
        let ms_ww = self
            .morally_strong()
            .intersect(&self.write.product(&self.write))
            .intersect(&self.overlap());
        fs.push(ms_ww.in_(&self.co.union(&self.co.transpose())));

        // sc: strict partial order on fence.sc events relating every
        // morally strong pair.
        fs.push(relational::patterns::strict_partial_order(&self.sc));
        fs.push(self.sc.in_(&self.sc_fence.product(&self.sc_fence)));
        let ms_ff = self
            .morally_strong()
            .intersect(&self.sc_fence.product(&self.sc_fence))
            .difference(&Expr::Iden);
        fs.push(ms_ff.in_(&self.sc.union(&self.sc.transpose())));

        // rmw: read→write, same thread (po), same location, strong, at
        // most one partner each way.
        fs.push(self.rmw.in_(&self.read.product(&self.write)));
        fs.push(self.rmw.in_(&self.overlap()));
        fs.push(self.rmw.in_(&self.po));
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            self.read.clone(),
            Expr::Var(v).join(&self.rmw).lone(),
        ));
        let v = fresh.var();
        fs.push(Formula::for_all(
            v,
            self.write.clone(),
            self.rmw.join(&Expr::Var(v)).lone(),
        ));
        fs.push(self.rmw.join(&Expr::Univ).in_(&self.strong));
        fs.push(Expr::Univ.join(&self.rmw).in_(&self.strong));

        // syncbarrier: barrier→barrier edges between distinct events.
        fs.push(
            self.syncbarrier
                .in_(&self.barrier.product(&self.barrier).difference(&Expr::Iden)),
        );

        // Everything lives within ev.
        for unary in [&self.read, &self.write, &self.fence, &self.barrier] {
            fs.push(unary.in_(ev));
        }
        for binary in [
            &self.po,
            &self.rf,
            &self.co,
            &self.sc,
            &self.rmw,
            &self.syncbarrier,
        ] {
            fs.push(binary.in_(&ev.product(ev)));
        }

        Formula::and_all(fs)
    }

    /// The six PTX axioms (Figure 7) as one conjunction.
    ///
    /// `dep` for No-Thin-Air is approximated by `rmw` (the only intrinsic
    /// dependency the program-free bounded model has).
    pub fn axioms(&self) -> Formula {
        Formula::and_all(self.axioms_named().into_iter().map(|(_, f)| f))
    }

    /// The axioms with their names, for per-axiom reporting.
    pub fn axioms_named(&self) -> Vec<(&'static str, Formula)> {
        use relational::patterns::{acyclic, irreflexive};
        let cause = self.cause();
        let fr = self.fr();
        let ms = self.morally_strong();
        let w = bracket(&self.write);
        vec![
            (
                "Coherence",
                w.join(&cause)
                    .join(&w)
                    .intersect(&self.overlap())
                    .in_(&self.co),
            ),
            ("FenceSC", irreflexive(&self.sc.join(&cause))),
            (
                "Atomicity",
                ms.intersect(&fr)
                    .join(&ms.intersect(&self.co))
                    .intersect(&self.rmw)
                    .no(),
            ),
            ("No-Thin-Air", acyclic(&self.rf.union(&self.rmw))),
            (
                "SC-per-Location",
                acyclic(
                    &ms.intersect(&self.rf.union(&self.co).union(&fr))
                        .union(&self.po_loc()),
                ),
            ),
            ("Causality", irreflexive(&self.rf.union(&fr).join(&cause))),
        ]
    }
}

/// The `[s]` bracket: `(s × s) ∩ iden`.
pub fn bracket(s: &Expr) -> Expr {
    relational::patterns::bracket(s)
}

/// A partition constraint: the `parts` are disjoint and cover `whole`.
pub fn partition(whole: &Expr, parts: &[&Expr]) -> Formula {
    let mut fs = Vec::new();
    let mut union: Option<Expr> = None;
    for (i, p) in parts.iter().enumerate() {
        fs.push(p.in_(whole));
        for q in &parts[i + 1..] {
            fs.push(p.intersect(q).no());
        }
        union = Some(match union {
            None => (*p).clone(),
            Some(u) => u.union(p),
        });
    }
    if let Some(u) = union {
        fs.push(whole.in_(&u));
    }
    Formula::and_all(fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{eval_formula, Instance, TupleSet};

    /// Builds a concrete instance of the MP execution of Figure 5 (with an
    /// explicit init write) and checks that the relational encoding gives
    /// the same verdicts as the bit-matrix engine: Causality violated, the
    /// other axioms satisfied.
    #[test]
    fn relational_encoding_matches_figure5() {
        let mut schema = Schema::new();
        let v = PtxVocab::declare(&mut schema, "p_");

        // events: 0=Wx 1=Wrel_y 2=Racq_y 3=Rx 8=init_x; threads 4,5; locs 6,7
        let n = 9;
        let mut inst = Instance::empty(&schema, n);
        let set = |inst: &mut Instance, e: &Expr, ts: TupleSet| {
            if let Expr::Rel(r) = e {
                inst.set(*r, ts);
            }
        };
        set(&mut inst, &v.ev, TupleSet::from_atoms([0, 1, 2, 3, 8]));
        set(&mut inst, &v.write, TupleSet::from_atoms([0, 1, 8]));
        set(&mut inst, &v.read, TupleSet::from_atoms([2, 3]));
        set(&mut inst, &v.fence, TupleSet::empty(1));
        set(&mut inst, &v.strong, TupleSet::from_atoms([1, 2]));
        set(&mut inst, &v.acq, TupleSet::from_atoms([2]));
        set(&mut inst, &v.rel, TupleSet::from_atoms([1]));
        set(&mut inst, &v.sc_fence, TupleSet::empty(1));
        set(&mut inst, &v.scope_cta, TupleSet::empty(1));
        set(&mut inst, &v.scope_gpu, TupleSet::from_atoms([1, 2]));
        set(&mut inst, &v.scope_sys, TupleSet::from_atoms([0, 3, 8]));
        set(
            &mut inst,
            &v.loc,
            TupleSet::from_pairs([(0, 6), (3, 6), (8, 6), (1, 7), (2, 7)]),
        );
        set(
            &mut inst,
            &v.thread,
            TupleSet::from_pairs([(0, 4), (1, 4), (2, 5), (3, 5), (8, 4)]),
        );
        set(&mut inst, &v.po, TupleSet::from_pairs([(0, 1), (2, 3)]));
        set(&mut inst, &v.rf, TupleSet::from_pairs([(1, 2), (8, 3)]));
        set(&mut inst, &v.co, TupleSet::from_pairs([(8, 0)]));
        set(&mut inst, &v.sc, TupleSet::empty(2));
        set(&mut inst, &v.rmw, TupleSet::empty(2));
        set(
            &mut inst,
            &v.same_cta,
            TupleSet::from_pairs([(4, 4), (5, 5)]),
        );
        set(
            &mut inst,
            &v.same_gpu,
            TupleSet::from_pairs([(4, 4), (5, 5), (4, 5), (5, 4)]),
        );
        set(&mut inst, &v.threads, TupleSet::from_atoms([4, 5]));

        // Moral strength holds for the rel/acq pair.
        let ms = relational::eval_expr(&schema, &inst, &v.morally_strong()).unwrap();
        assert!(ms.contains_pair(1, 2), "rel/acq morally strong: {ms}");
        assert!(ms.contains_pair(0, 1), "po-related pair");
        assert!(!ms.contains_pair(0, 3), "weak cross-thread pair");

        // The sw chain and cause reach the data read.
        let cause = relational::eval_expr(&schema, &inst, &v.cause()).unwrap();
        assert!(cause.contains_pair(0, 3), "cause(Wx, Rx): {cause}");

        for (name, f) in &v.axioms_named() {
            let holds = eval_formula(&schema, &inst, f).unwrap();
            if *name == "Causality" {
                assert!(!holds, "Causality must be violated");
            } else {
                assert!(holds, "{name} should hold");
            }
        }
    }

    /// The model finder can synthesize a consistent PTX execution with a
    /// synchronizing rf from scratch.
    #[test]
    fn finder_synthesizes_consistent_execution() {
        use modelfinder::{ModelFinder, Options, Problem};
        use relational::Bounds;

        let mut schema = Schema::new();
        let v = PtxVocab::declare(&mut schema, "p_");
        let mut fresh = VarGen::new();

        // Universe: 3 events (0..3), 2 threads (3, 4), 1 loc (5).
        let n = 6;
        let mut bounds = Bounds::new(&schema, n);
        let events = TupleSet::from_atoms([0, 1, 2]);
        let threads = TupleSet::from_atoms([3, 4]);
        let pairs_ev = |b: &mut Bounds, e: &Expr| {
            if let Expr::Rel(r) = e {
                b.bound_upper(*r, relational::full_set(2, n));
            }
        };
        for e in [
            &v.read,
            &v.write,
            &v.fence,
            &v.strong,
            &v.acq,
            &v.rel,
            &v.sc_fence,
        ] {
            if let Expr::Rel(r) = e {
                bounds.bound_upper(*r, events.clone());
            }
        }
        for e in [&v.scope_cta, &v.scope_gpu, &v.scope_sys] {
            if let Expr::Rel(r) = e {
                bounds.bound_upper(*r, events.clone());
            }
        }
        if let Expr::Rel(r) = &v.ev {
            bounds.bound_exact(*r, events.clone());
        }
        if let Expr::Rel(r) = &v.threads {
            bounds.bound_exact(*r, threads.clone());
        }
        if let Expr::Rel(r) = &v.same_cta {
            bounds.bound_exact(*r, TupleSet::from_pairs([(3, 3), (4, 4)]));
        }
        if let Expr::Rel(r) = &v.same_gpu {
            bounds.bound_exact(*r, TupleSet::from_pairs([(3, 3), (4, 4), (3, 4), (4, 3)]));
        }
        if let Expr::Rel(r) = &v.loc {
            bounds.bound_upper(*r, TupleSet::from_pairs([(0, 5), (1, 5), (2, 5)]));
        }
        if let Expr::Rel(r) = &v.thread {
            bounds.bound_upper(
                *r,
                TupleSet::from_pairs([(0, 3), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4)]),
            );
        }
        for e in [&v.po, &v.rf, &v.co, &v.sc, &v.rmw] {
            pairs_ev(&mut bounds, e);
        }

        let wf = v.well_formed(&mut fresh);
        let axioms = v.axioms();
        // Ask for an execution with a cross-thread rf: rf non-empty and
        // disjoint from same-thread pairs.
        let same_thread = v.thread.join(&v.thread.transpose());
        let formula =
            Formula::and_all([wf, axioms, v.rf.some(), v.rf.intersect(&same_thread).no()]);
        let problem = Problem {
            schema,
            bounds,
            formula,
        };
        let (verdict, _) = ModelFinder::new(Options::default())
            .solve(&problem)
            .unwrap();
        assert!(
            verdict.instance().is_some(),
            "expected a consistent execution"
        );
    }
}
