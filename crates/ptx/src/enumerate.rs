//! Exhaustive enumeration of the consistent executions of a PTX program.
//!
//! A candidate execution is a choice of reads-from sources, a coherence
//! witness per location (a strict *partial* order — PTX's distinguishing
//! feature, §8.8.6), and a Fence-SC witness. Candidates that satisfy all
//! six axioms are the legal executions; their register and final-memory
//! outcomes are collected for litmus-test checking.

use std::collections::BTreeMap;

use memmodel::{enumerate_partial_orders, Location, Odometer, Register, RelMat, ThreadId, Value};

use crate::axioms::{check_all, AxiomCheck};
use crate::event::{expand, Expansion};
use crate::exec::{evaluate_values, final_values, morally_strong, Candidate, ValueMap};
use crate::inst::Program;

/// One consistent (axiom-satisfying) execution with its observable state.
#[derive(Debug, Clone)]
pub struct ConsistentExecution {
    /// The witness relations.
    pub candidate: Candidate,
    /// Per-event values.
    pub values: ValueMap,
    /// Final value of every register that was written.
    pub final_registers: BTreeMap<(ThreadId, Register), Value>,
    /// Per location, the values of co-maximal writes (several in racy
    /// executions, where the final value is undefined).
    pub final_memory: Vec<(Location, Vec<Value>)>,
}

/// Statistics from an enumeration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Total candidate witnesses examined.
    pub candidates: u64,
    /// Candidates with cyclic value dependencies (No-Thin-Air rejections
    /// detected during value evaluation).
    pub value_cycles: u64,
    /// Candidates rejected by the axioms.
    pub inconsistent: u64,
    /// Consistent executions found.
    pub consistent: u64,
}

/// The result of enumerating a program's executions.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// The expanded program (event table and static relations).
    pub expansion: Expansion,
    /// Every consistent execution.
    pub executions: Vec<ConsistentExecution>,
    /// Search statistics.
    pub stats: EnumerationStats,
}

/// Enumerates every candidate witness of `program`, invoking `visit` with
/// each candidate, its axiom check, and its values (when value evaluation
/// succeeds; `None` indicates a thin-air value cycle). This is the
/// engine under [`enumerate_executions`], exposed for differential
/// testing against the relational encoding.
pub fn visit_candidates<F>(program: &Program, mut visit: F) -> (Expansion, EnumerationStats)
where
    F: FnMut(&Candidate, &AxiomCheck, Option<&ValueMap>),
{
    let expansion = expand(program);
    let layout = &program.layout;
    let n = expansion.len();
    let ms = morally_strong(&expansion, layout);
    let mut stats = EnumerationStats::default();

    // Reads-from candidates: every write to the same location.
    let rf_candidates: Vec<Vec<usize>> = expansion
        .reads
        .iter()
        .map(|&r| {
            let loc = expansion.events[r].loc.expect("reads have locations");
            expansion
                .writes_by_loc
                .iter()
                .find(|(l, _)| *l == loc)
                .map(|(_, ws)| ws.clone())
                .unwrap_or_default()
        })
        .collect();

    // Coherence witnesses per location.
    let co_per_loc: Vec<Vec<RelMat>> = expansion
        .writes_by_loc
        .iter()
        .map(|(_, writes)| {
            let init = writes[0];
            let fixed: Vec<(usize, usize)> = writes[1..].iter().map(|&w| (init, w)).collect();
            let mut must = Vec::new();
            let mut may = Vec::new();
            for (i, &a) in writes[1..].iter().enumerate() {
                for &b in &writes[1 + i + 1..] {
                    if ms.get(a, b) {
                        must.push((a, b));
                    } else {
                        may.push((a, b));
                    }
                }
            }
            enumerate_partial_orders(n, &fixed, &must, &may)
        })
        .collect();

    // Fence-SC witnesses.
    let sc_witnesses: Vec<RelMat> = {
        let fences = &expansion.sc_fences;
        let mut must = Vec::new();
        let mut may = Vec::new();
        for (i, &a) in fences.iter().enumerate() {
            for &b in &fences[i + 1..] {
                if ms.get(a, b) {
                    must.push((a, b));
                } else {
                    may.push((a, b));
                }
            }
        }
        enumerate_partial_orders(n, &[], &must, &may)
    };

    for rf_idx in Odometer::new(rf_candidates.iter().map(Vec::len).collect()) {
        let rf_source: Vec<usize> = rf_idx
            .iter()
            .enumerate()
            .map(|(i, &k)| rf_candidates[i][k])
            .collect();
        // Values depend only on rf, so evaluate before expanding co/sc.
        let probe = Candidate {
            rf_source: rf_source.clone(),
            co: RelMat::new(n),
            sc: RelMat::new(n),
        };
        let values = evaluate_values(&expansion, &probe);
        if values.is_none() {
            stats.value_cycles += 1;
        }

        for co_idx in Odometer::new(co_per_loc.iter().map(Vec::len).collect()) {
            let mut co = RelMat::new(n);
            for (loc_i, &k) in co_idx.iter().enumerate() {
                co.union_with(&co_per_loc[loc_i][k]);
            }
            for sc in &sc_witnesses {
                stats.candidates += 1;
                let candidate = Candidate {
                    rf_source: rf_source.clone(),
                    co: co.clone(),
                    sc: sc.clone(),
                };
                let check: AxiomCheck = check_all(&expansion, layout, &candidate);
                if check.is_consistent() && values.is_some() {
                    stats.consistent += 1;
                } else {
                    stats.inconsistent += 1;
                }
                visit(&candidate, &check, values.as_ref());
            }
        }
    }

    (expansion, stats)
}

/// Enumerates all consistent executions of `program` under `model`.
///
/// Both models quantify over the same candidate space (reads-from
/// choices, partial coherence witnesses that totalize morally strong
/// write pairs, Fence-SC witnesses) — a deliberate formalization choice
/// so that verdicts are always compared over identical witness sets
/// (see [`crate::cumulative`]).
pub fn enumerate_executions_model(
    program: &Program,
    model: crate::cumulative::Model,
) -> Enumeration {
    if model == crate::cumulative::Model::Axiomatic {
        return enumerate_executions(program);
    }
    let x = expand(program);
    let layout = program.layout.clone();
    let mut buffered: Vec<(Candidate, ValueMap)> = Vec::new();
    let (mut consistent, mut inconsistent) = (0u64, 0u64);
    let (expansion, mut stats) = visit_candidates(program, |candidate, _check, values| {
        let ok = crate::cumulative::check_all_cumulative(&x, &layout, candidate).is_consistent();
        match (ok, values) {
            (true, Some(values)) => {
                consistent += 1;
                buffered.push((candidate.clone(), values.clone()));
            }
            _ => inconsistent += 1,
        }
    });
    stats.consistent = consistent;
    stats.inconsistent = inconsistent;
    let executions = buffered
        .into_iter()
        .map(|(c, v)| finish(&expansion, c, &v))
        .collect();
    Enumeration {
        expansion,
        executions,
        stats,
    }
}

/// Enumerates all consistent executions of `program` under the PTX memory
/// model.
pub fn enumerate_executions(program: &Program) -> Enumeration {
    let mut executions = Vec::new();
    let (expansion, stats) = {
        // Collect finished executions while visiting; `finish` needs the
        // expansion, so buffer raw parts first.
        let mut buffered: Vec<(Candidate, ValueMap)> = Vec::new();
        let (expansion, stats) = visit_candidates(program, |candidate, check, values| {
            if let (true, Some(values)) = (check.is_consistent(), values) {
                buffered.push((candidate.clone(), values.clone()));
            }
        });
        for (candidate, values) in buffered {
            executions.push(finish(&expansion, candidate, &values));
        }
        (expansion, stats)
    };

    Enumeration {
        expansion,
        executions,
        stats,
    }
}

fn finish(expansion: &Expansion, candidate: Candidate, values: &ValueMap) -> ConsistentExecution {
    let final_registers: BTreeMap<(ThreadId, Register), Value> = expansion
        .final_setters
        .iter()
        .filter_map(|&((t, r), e)| values.values[e].map(|v| ((t, r), v)))
        .collect();
    let final_memory: Vec<(Location, Vec<Value>)> = expansion
        .writes_by_loc
        .iter()
        .map(|&(loc, _)| (loc, final_values(expansion, &candidate, values, loc)))
        .collect();
    ConsistentExecution {
        candidate,
        values: values.clone(),
        final_registers,
        final_memory,
    }
}

impl Enumeration {
    /// Whether some consistent execution satisfies `pred` over its final
    /// registers and memory.
    pub fn any_execution<F: Fn(&ConsistentExecution) -> bool>(&self, pred: F) -> bool {
        self.executions.iter().any(pred)
    }

    /// The distinct final register valuations, sorted.
    pub fn register_outcomes(&self) -> Vec<BTreeMap<(ThreadId, Register), Value>> {
        let mut outs: Vec<_> = self
            .executions
            .iter()
            .map(|e| e.final_registers.clone())
            .collect();
        outs.sort();
        outs.dedup();
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::build::*;
    use crate::inst::{AtomSem, Program};
    use memmodel::{Scope, SystemLayout};

    fn reg(t: u32, r: u32) -> (ThreadId, Register) {
        (ThreadId(t), Register(r))
    }

    fn has_outcome(e: &Enumeration, want: &[((ThreadId, Register), u64)]) -> bool {
        e.any_execution(|x| {
            want.iter()
                .all(|(k, v)| x.final_registers.get(k) == Some(&Value(*v)))
        })
    }

    /// Figure 5: MP with release/acquire at gpu scope — the stale outcome
    /// r0==1, r1==0 is forbidden; the other three are allowed.
    #[test]
    fn mp_acquire_release_forbids_stale_read() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(memmodel::Location(0), 1),
                    st_release(Scope::Gpu, memmodel::Location(1), 1),
                ],
                vec![
                    ld_acquire(Scope::Gpu, Register(0), memmodel::Location(1)),
                    ld_weak(Register(1), memmodel::Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(
            !has_outcome(&e, &[(reg(1, 0), 1), (reg(1, 1), 0)]),
            "forbidden"
        );
        assert!(has_outcome(&e, &[(reg(1, 0), 1), (reg(1, 1), 1)]));
        assert!(has_outcome(&e, &[(reg(1, 0), 0), (reg(1, 1), 0)]));
        assert!(has_outcome(&e, &[(reg(1, 0), 0), (reg(1, 1), 1)]));
    }

    /// MP with relaxed (not acquire/release) synchronization allows the
    /// stale read.
    #[test]
    fn mp_relaxed_allows_stale_read() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(memmodel::Location(0), 1),
                    st_relaxed(Scope::Gpu, memmodel::Location(1), 1),
                ],
                vec![
                    ld_relaxed(Scope::Gpu, Register(0), memmodel::Location(1)),
                    ld_weak(Register(1), memmodel::Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(has_outcome(&e, &[(reg(1, 0), 1), (reg(1, 1), 0)]));
    }

    /// MP with CTA-scoped release/acquire across different CTAs: the scope
    /// is too narrow, so the stale read is allowed again.
    #[test]
    fn mp_cta_scope_across_ctas_is_too_weak() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(memmodel::Location(0), 1),
                    st_release(Scope::Cta, memmodel::Location(1), 1),
                ],
                vec![
                    ld_acquire(Scope::Cta, Register(0), memmodel::Location(1)),
                    ld_weak(Register(1), memmodel::Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(has_outcome(&e, &[(reg(1, 0), 1), (reg(1, 1), 0)]));
    }

    /// …but within the same CTA, cta scope suffices.
    #[test]
    fn mp_cta_scope_within_cta_is_sound() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(memmodel::Location(0), 1),
                    st_release(Scope::Cta, memmodel::Location(1), 1),
                ],
                vec![
                    ld_acquire(Scope::Cta, Register(0), memmodel::Location(1)),
                    ld_weak(Register(1), memmodel::Location(0)),
                ],
            ],
            SystemLayout::single_cta(2),
        );
        let e = enumerate_executions(&p);
        assert!(!has_outcome(&e, &[(reg(1, 0), 1), (reg(1, 1), 0)]));
    }

    /// Figure 6: SB with morally strong fence.sc forbids the 0/0 outcome.
    #[test]
    fn sb_with_fence_sc_forbids_both_zero() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(memmodel::Location(0), 1),
                    fence_sc(Scope::Gpu),
                    ld_weak(Register(0), memmodel::Location(1)),
                ],
                vec![
                    st_weak(memmodel::Location(1), 1),
                    fence_sc(Scope::Gpu),
                    ld_weak(Register(1), memmodel::Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(
            !has_outcome(&e, &[(reg(0, 0), 0), (reg(1, 1), 0)]),
            "forbidden"
        );
        assert!(has_outcome(&e, &[(reg(0, 0), 1), (reg(1, 1), 0)]));
    }

    /// SB without fences allows 0/0 (store buffering).
    #[test]
    fn sb_without_fences_allows_both_zero() {
        let p = Program::new(
            vec![
                vec![
                    st_relaxed(Scope::Gpu, memmodel::Location(0), 1),
                    ld_relaxed(Scope::Gpu, Register(0), memmodel::Location(1)),
                ],
                vec![
                    st_relaxed(Scope::Gpu, memmodel::Location(1), 1),
                    ld_relaxed(Scope::Gpu, Register(1), memmodel::Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(has_outcome(&e, &[(reg(0, 0), 0), (reg(1, 1), 0)]));
    }

    /// SB with fence.sc at mismatched narrow scopes (morally weak fences)
    /// does not forbid the weak outcome — the fences need not be related
    /// by sc.
    #[test]
    fn sb_with_morally_weak_fences_stays_weak() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(memmodel::Location(0), 1),
                    fence_sc(Scope::Cta),
                    ld_weak(Register(0), memmodel::Location(1)),
                ],
                vec![
                    st_weak(memmodel::Location(1), 1),
                    fence_sc(Scope::Cta),
                    ld_weak(Register(1), memmodel::Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(has_outcome(&e, &[(reg(0, 0), 0), (reg(1, 1), 0)]));
    }

    /// Figure 8: load-buffering with data dependencies — no execution may
    /// conjure 42 out of thin air; with weak loads the only values are 0.
    #[test]
    fn lb_thin_air_values_never_appear() {
        let p = Program::new(
            vec![
                vec![
                    ld_weak(Register(0), memmodel::Location(1)),
                    st_weak_reg(memmodel::Location(0), Register(0)),
                ],
                vec![
                    ld_weak(Register(1), memmodel::Location(0)),
                    st_weak_reg(memmodel::Location(1), Register(1)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(!e.executions.is_empty());
        for x in &e.executions {
            for v in x.final_registers.values() {
                assert_eq!(*v, Value(0), "only zero can circulate");
            }
        }
        assert!(
            e.stats.value_cycles > 0,
            "the thin-air rf choice was seen and rejected"
        );
    }

    /// Atomic fetch-add pairs never lose updates: two releaxed atom.add(1)
    /// on different threads always sum to 2.
    #[test]
    fn atomics_do_not_lose_updates() {
        let p = Program::new(
            vec![
                vec![atom_add(
                    AtomSem::Relaxed,
                    Scope::Gpu,
                    Register(0),
                    memmodel::Location(0),
                    1,
                )],
                vec![atom_add(
                    AtomSem::Relaxed,
                    Scope::Gpu,
                    Register(0),
                    memmodel::Location(0),
                    1,
                )],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(!e.executions.is_empty());
        for x in &e.executions {
            let finals = &x.final_memory[0].1;
            assert_eq!(finals, &vec![Value(2)], "lost update: {finals:?}");
        }
        // One atom reads 0, the other reads 1.
        let mut sums: Vec<u64> = e
            .executions
            .iter()
            .map(|x| x.final_registers[&reg(0, 0)].0 + x.final_registers[&reg(1, 0)].0)
            .collect();
        sums.sort();
        sums.dedup();
        assert_eq!(sums, vec![1]);
    }

    /// CoRR (Figure 9a): reads of the same location in one thread may not
    /// observe writes out of order.
    #[test]
    fn corr_forbidden() {
        let p = Program::new(
            vec![
                vec![st_relaxed(Scope::Gpu, memmodel::Location(0), 1)],
                vec![
                    ld_relaxed(Scope::Gpu, Register(0), memmodel::Location(0)),
                    ld_weak(Register(1), memmodel::Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let e = enumerate_executions(&p);
        assert!(!has_outcome(&e, &[(reg(1, 0), 1), (reg(1, 1), 0)]));
        assert!(has_outcome(&e, &[(reg(1, 0), 1), (reg(1, 1), 1)]));
        assert!(has_outcome(&e, &[(reg(1, 0), 0), (reg(1, 1), 1)]));
    }

    /// Barrier synchronization (§8.8.4) behaves like cta-scoped
    /// release/acquire: MP over a bar.sync is forbidden from reading stale
    /// data within a CTA.
    #[test]
    fn barrier_provides_synchronization() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(memmodel::Location(0), 1),
                    bar_sync(memmodel::BarrierId(0)),
                ],
                vec![
                    bar_sync(memmodel::BarrierId(0)),
                    ld_weak(Register(0), memmodel::Location(0)),
                ],
            ],
            SystemLayout::single_cta(2),
        );
        let e = enumerate_executions(&p);
        // After both threads sync on the barrier, the load must see 1.
        // (Straight-line executions assume both threads pass the barrier.)
        assert!(
            !has_outcome(&e, &[(reg(1, 0), 0)]),
            "stale read through barrier"
        );
        assert!(has_outcome(&e, &[(reg(1, 0), 1)]));
    }
}
