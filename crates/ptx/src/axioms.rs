//! The six top-level PTX memory model axioms (paper Figure 7, §8.9).

use memmodel::SystemLayout;

use crate::event::Expansion;
use crate::exec::{Candidate, Relations};

/// One of the six axioms of the PTX memory consistency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axiom {
    /// `[W]; cause; [W] ⊆ co` for overlapping writes (§8.9.1).
    Coherence,
    /// `irreflexive(sc ; cause)` (§8.9.2).
    FenceSc,
    /// `empty(((ms ∩ fr) ; (ms ∩ co)) ∩ rmw)` (§8.9.3).
    Atomicity,
    /// `acyclic(rf ∪ dep)` (§8.9.4).
    NoThinAir,
    /// `acyclic((ms ∩ (rf ∪ co ∪ fr)) ∪ po_loc)` (§8.9.5).
    ScPerLocation,
    /// `irreflexive((rf ∪ fr) ; cause)` (§8.9.6).
    Causality,
}

impl std::fmt::Display for Axiom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Axiom::Coherence => "Coherence",
            Axiom::FenceSc => "FenceSC",
            Axiom::Atomicity => "Atomicity",
            Axiom::NoThinAir => "No-Thin-Air",
            Axiom::ScPerLocation => "SC-per-Location",
            Axiom::Causality => "Causality",
        };
        write!(f, "{name}")
    }
}

/// All six axioms, in paper order.
pub const ALL_AXIOMS: [Axiom; 6] = [
    Axiom::Coherence,
    Axiom::FenceSc,
    Axiom::Atomicity,
    Axiom::NoThinAir,
    Axiom::ScPerLocation,
    Axiom::Causality,
];

/// The outcome of checking a candidate against the axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxiomCheck {
    /// Axioms the candidate violates (empty = consistent execution).
    pub violations: Vec<Axiom>,
}

impl AxiomCheck {
    /// Whether the candidate is a legal execution.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks one axiom of a candidate execution given its derived relations.
pub fn check_axiom(
    axiom: Axiom,
    expansion: &Expansion,
    candidate: &Candidate,
    relations: &Relations,
) -> bool {
    let events = &expansion.events;
    match axiom {
        Axiom::Coherence => {
            // [W]; cause; [W] over overlapping writes must be within co.
            relations.cause.pairs().all(|(a, b)| {
                let (ea, eb) = (&events[a], &events[b]);
                let both_writes = ea.kind == crate::event::EventKind::Write
                    && eb.kind == crate::event::EventKind::Write;
                !(both_writes && ea.overlaps(eb)) || candidate.co.get(a, b)
            })
        }
        Axiom::FenceSc => candidate.sc.compose(&relations.cause).is_irreflexive(),
        Axiom::Atomicity => {
            let ms_fr = relations.morally_strong.intersect(&relations.fr);
            let ms_co = relations.morally_strong.intersect(&candidate.co);
            ms_fr.compose(&ms_co).intersect(&expansion.rmw).is_empty()
        }
        Axiom::NoThinAir => relations.rf.union(&expansion.dep).is_acyclic(),
        Axiom::ScPerLocation => {
            let comm = relations.rf.union(&candidate.co).union(&relations.fr);
            relations
                .morally_strong
                .intersect(&comm)
                .union(&relations.po_loc)
                .is_acyclic()
        }
        Axiom::Causality => relations
            .rf
            .union(&relations.fr)
            .compose(&relations.cause)
            .is_irreflexive(),
    }
}

/// Checks all six axioms of a candidate execution.
pub fn check_all(
    expansion: &Expansion,
    layout: &SystemLayout,
    candidate: &Candidate,
) -> AxiomCheck {
    let relations = Relations::compute(expansion, layout, candidate);
    let violations = ALL_AXIOMS
        .iter()
        .copied()
        .filter(|&a| !check_axiom(a, expansion, candidate, &relations))
        .collect();
    AxiomCheck { violations }
}

/// Well-formedness of a coherence witness (definition §8.8.6, not an
/// axiom): a strict partial order on overlapping writes that relates every
/// morally strong overlapping write pair and orders init writes first.
/// The enumerator produces only well-formed witnesses; this is used to
/// validate hand-built candidates.
pub fn co_well_formed(expansion: &Expansion, layout: &SystemLayout, candidate: &Candidate) -> bool {
    let co = &candidate.co;
    if !co.is_irreflexive() || !co.is_transitive() {
        return false;
    }
    let events = &expansion.events;
    // Only overlapping writes are related.
    for (a, b) in co.pairs() {
        let (ea, eb) = (&events[a], &events[b]);
        if ea.kind != crate::event::EventKind::Write
            || eb.kind != crate::event::EventKind::Write
            || !ea.overlaps(eb)
        {
            return false;
        }
    }
    // Init writes precede every other write to the location.
    for (a, b) in crate::exec::init_co_edges(expansion) {
        if !co.get(a, b) {
            return false;
        }
    }
    // Morally strong overlapping writes are related (either direction).
    let relations = Relations::compute(expansion, layout, candidate);
    for (_, writes) in &expansion.writes_by_loc {
        for (i, &a) in writes.iter().enumerate() {
            for &b in &writes[i + 1..] {
                if relations.morally_strong.get(a, b) && !co.get(a, b) && !co.get(b, a) {
                    return false;
                }
            }
        }
    }
    true
}

/// Well-formedness of a Fence-SC witness (§8.8.3): an acyclic partial
/// order over `fence.sc` events relating every morally strong pair.
pub fn sc_well_formed(expansion: &Expansion, layout: &SystemLayout, candidate: &Candidate) -> bool {
    let sc = &candidate.sc;
    if !sc.is_irreflexive() || !sc.is_transitive() {
        return false;
    }
    for (a, b) in sc.pairs() {
        if !expansion.events[a].sc_fence || !expansion.events[b].sc_fence {
            return false;
        }
    }
    let relations = Relations::compute(expansion, layout, candidate);
    for (i, &a) in expansion.sc_fences.iter().enumerate() {
        for &b in &expansion.sc_fences[i + 1..] {
            if relations.morally_strong.get(a, b) && !sc.get(a, b) && !sc.get(b, a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::expand;
    use crate::exec::init_co_edges;
    use crate::inst::build::*;
    use crate::inst::Program;
    use memmodel::{Location, Register, Scope, SystemLayout};

    /// The MP forbidden outcome: acquire sees the release but the data
    /// load sees init. Violates Causality (Figure 5).
    #[test]
    fn mp_forbidden_outcome_violates_causality() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(Location(0), 1),
                    st_release(Scope::Gpu, Location(1), 1),
                ],
                vec![
                    ld_acquire(Scope::Gpu, Register(0), Location(1)),
                    ld_weak(Register(1), Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let layout = p.layout.clone();
        let x = expand(&p);
        let co = memmodel::RelMat::from_pairs(x.len(), init_co_edges(&x));
        let candidate = Candidate {
            rf_source: vec![3, 0],
            co,
            sc: memmodel::RelMat::new(x.len()),
        };
        let check = check_all(&x, &layout, &candidate);
        assert!(check.violations.contains(&Axiom::Causality));
    }

    /// The same MP candidate where the data load reads the store is
    /// consistent.
    #[test]
    fn mp_allowed_outcome_is_consistent() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(Location(0), 1),
                    st_release(Scope::Gpu, Location(1), 1),
                ],
                vec![
                    ld_acquire(Scope::Gpu, Register(0), Location(1)),
                    ld_weak(Register(1), Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let layout = p.layout.clone();
        let x = expand(&p);
        let co = memmodel::RelMat::from_pairs(x.len(), init_co_edges(&x));
        let candidate = Candidate {
            rf_source: vec![3, 2], // both loads see the stores
            co,
            sc: memmodel::RelMat::new(x.len()),
        };
        let check = check_all(&x, &layout, &candidate);
        assert!(check.is_consistent(), "violations: {:?}", check.violations);
    }

    /// CoWW (Figure 9d): two same-thread weak stores must be co-ordered in
    /// program order; the reverse order violates SC-per-Location.
    #[test]
    fn coww_reverse_co_violates_sc_per_location() {
        let p = Program::new(
            vec![vec![st_weak(Location(0), 1), st_weak(Location(0), 2)]],
            SystemLayout::single_cta(1),
        );
        let layout = p.layout.clone();
        let x = expand(&p);
        let mut co = memmodel::RelMat::from_pairs(x.len(), init_co_edges(&x));
        co.set(2, 1); // W2 before W1: contradicts po
        let candidate = Candidate {
            rf_source: vec![],
            co,
            sc: memmodel::RelMat::new(x.len()),
        };
        let check = check_all(&x, &layout, &candidate);
        assert!(check.violations.contains(&Axiom::ScPerLocation));
    }

    #[test]
    fn co_well_formedness_catches_unrelated_strong_writes() {
        let p = Program::new(
            vec![
                vec![st_relaxed(Scope::Gpu, Location(0), 1)],
                vec![st_relaxed(Scope::Gpu, Location(0), 2)],
            ],
            SystemLayout::single_cta(2),
        );
        let layout = p.layout.clone();
        let x = expand(&p);
        // co with only init edges: the two strong writes are unrelated —
        // ill-formed because they are morally strong.
        let co = memmodel::RelMat::from_pairs(x.len(), init_co_edges(&x));
        let candidate = Candidate {
            rf_source: vec![],
            co: co.clone(),
            sc: memmodel::RelMat::new(x.len()),
        };
        assert!(!co_well_formed(&x, &layout, &candidate));
        // Orienting them fixes it.
        let mut co2 = co;
        co2.set(1, 2);
        let candidate2 = Candidate {
            rf_source: vec![],
            co: co2,
            sc: memmodel::RelMat::new(x.len()),
        };
        assert!(co_well_formed(&x, &layout, &candidate2));
    }

    /// Racy weak writes may legitimately remain co-unrelated.
    #[test]
    fn racy_weak_writes_may_be_unordered() {
        let p = Program::new(
            vec![vec![st_weak(Location(0), 1)], vec![st_weak(Location(0), 2)]],
            SystemLayout::single_cta(2),
        );
        let layout = p.layout.clone();
        let x = expand(&p);
        let co = memmodel::RelMat::from_pairs(x.len(), init_co_edges(&x));
        let candidate = Candidate {
            rf_source: vec![],
            co,
            sc: memmodel::RelMat::new(x.len()),
        };
        assert!(co_well_formed(&x, &layout, &candidate));
        assert!(check_all(&x, &layout, &candidate).is_consistent());
    }
}
