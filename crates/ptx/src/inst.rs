//! The PTX memory instruction set (paper Figure 3).
//!
//! We model exactly the highlighted portions of the `ld`, `st`, `atom`,
//! `red`, `fence`, and `bar` instructions: ordering semantics and scope.
//! The `.type`, `.vec`, `.ss`, and `.cop` qualifiers do not affect the
//! memory model (paper §3.6) and are omitted; `.volatile` is equivalent to
//! `.relaxed.sys` and can be expressed directly.

use memmodel::{BarrierId, Location, Register, Scope, SystemLayout, Value};

/// Ordering semantics of a `ld` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadSem {
    /// `ld.weak`: no ordering, not a strong operation.
    Weak,
    /// `ld.relaxed.scope`: strong but unordered.
    Relaxed,
    /// `ld.acquire.scope`.
    Acquire,
}

/// Ordering semantics of a `st` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreSem {
    /// `st.weak`: no ordering, not a strong operation.
    Weak,
    /// `st.relaxed.scope`: strong but unordered.
    Relaxed,
    /// `st.release.scope`.
    Release,
}

/// Ordering semantics of an `atom`/`red` instruction (always strong).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomSem {
    /// `atom.relaxed.scope`.
    Relaxed,
    /// `atom.acquire.scope`.
    Acquire,
    /// `atom.release.scope`.
    Release,
    /// `atom.acq_rel.scope`.
    AcqRel,
}

/// Ordering semantics of a `fence` instruction.
///
/// PTX 6.0 exposes `.sc` and `.acq_rel`; the acquire-only and release-only
/// forms appear in the paper's compilation mapping (Figure 11) and are
/// modeled as one-sided restrictions of `.acq_rel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceSem {
    /// `fence.acquire.scope` (one-sided).
    Acquire,
    /// `fence.release.scope` (one-sided).
    Release,
    /// `fence.acq_rel.scope`.
    AcqRel,
    /// `fence.sc.scope` (`membar` is a synonym).
    Sc,
}

impl FenceSem {
    /// Whether the fence has acquire semantics (participates in acquire
    /// patterns).
    pub fn is_acquire(self) -> bool {
        matches!(self, FenceSem::Acquire | FenceSem::AcqRel | FenceSem::Sc)
    }

    /// Whether the fence has release semantics (participates in release
    /// patterns).
    pub fn is_release(self) -> bool {
        matches!(self, FenceSem::Release | FenceSem::AcqRel | FenceSem::Sc)
    }
}

/// The kind of a `bar` (CTA execution barrier) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarKind {
    /// `bar.sync`: arrive and wait.
    Sync,
    /// `bar.arrive`: arrive without waiting.
    Arrive,
    /// `bar.red`: arrive, reduce, and wait.
    Red,
}

impl BarKind {
    /// Whether this barrier operation *waits* (and therefore receives
    /// synchronization): `bar.sync` and `bar.red` do, `bar.arrive` does not
    /// (paper §8.8.4).
    pub fn waits(self) -> bool {
        matches!(self, BarKind::Sync | BarKind::Red)
    }
}

/// A read-modify-write operation performed by `atom`/`red`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `atom.exch`: store the operand, return the old value.
    Exch,
    /// `atom.add`: add the operand, return the old value.
    Add,
    /// `atom.cas`: compare with `cmp`; if equal store the operand.
    Cas {
        /// The comparison value.
        cmp: Value,
    },
}

impl RmwOp {
    /// The value stored by the RMW given the old value and the operand.
    pub fn apply(self, old: Value, operand: Value) -> Value {
        match self {
            RmwOp::Exch => operand,
            RmwOp::Add => Value(old.0.wrapping_add(operand.0)),
            RmwOp::Cas { cmp } => {
                if old == cmp {
                    operand
                } else {
                    old
                }
            }
        }
    }
}

/// A store/atom data operand: an immediate or a register read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An immediate value.
    Imm(Value),
    /// The current value of a register (set by an earlier load in the same
    /// thread), creating a data dependency.
    Reg(Register),
}

/// One PTX instruction, as modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `ld{.sem}{.scope} dst, [loc]`.
    Ld {
        /// Ordering semantics.
        sem: LoadSem,
        /// Scope (ignored for `.weak`).
        scope: Scope,
        /// Destination register.
        dst: Register,
        /// Address read.
        loc: Location,
    },
    /// `st{.sem}{.scope} [loc], src`.
    St {
        /// Ordering semantics.
        sem: StoreSem,
        /// Scope (ignored for `.weak`).
        scope: Scope,
        /// Address written.
        loc: Location,
        /// Data operand.
        src: Operand,
    },
    /// `atom{.sem}.scope.op dst, [loc], src` — an atomic read-modify-write
    /// returning the old value.
    Atom {
        /// Ordering semantics.
        sem: AtomSem,
        /// Scope.
        scope: Scope,
        /// Destination register receiving the old value.
        dst: Register,
        /// Address updated.
        loc: Location,
        /// The read-modify-write operation.
        op: RmwOp,
        /// Data operand.
        src: Operand,
    },
    /// `red{.sem}.scope.op [loc], src` — a reduction: an `atom` that does
    /// not return a value.
    Red {
        /// Ordering semantics.
        sem: AtomSem,
        /// Scope.
        scope: Scope,
        /// Address updated.
        loc: Location,
        /// The read-modify-write operation.
        op: RmwOp,
        /// Data operand.
        src: Operand,
    },
    /// `fence{.sem}.scope`.
    Fence {
        /// Ordering semantics.
        sem: FenceSem,
        /// Scope.
        scope: Scope,
    },
    /// `bar{.kind} barrier` — CTA execution barrier.
    Bar {
        /// The barrier operation kind.
        kind: BarKind,
        /// The barrier resource.
        bar: BarrierId,
    },
}

/// A straight-line multi-threaded PTX program: one instruction list per
/// thread plus the system layout placing threads into CTAs and GPUs.
///
/// Litmus tests consider only the fully unrolled straight-line execution
/// (paper §2.2), so there is no control flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Instructions per thread (index = thread id).
    pub threads: Vec<Vec<Instruction>>,
    /// Thread placement.
    pub layout: SystemLayout,
}

impl Program {
    /// Creates a program, checking that the layout covers every thread.
    ///
    /// # Panics
    ///
    /// Panics if `layout` has a different thread count than `threads`.
    pub fn new(threads: Vec<Vec<Instruction>>, layout: SystemLayout) -> Program {
        assert_eq!(
            threads.len(),
            layout.num_threads(),
            "layout thread count mismatch"
        );
        Program { threads, layout }
    }

    /// The set of locations used anywhere in the program, sorted.
    pub fn locations(&self) -> Vec<Location> {
        let mut locs: Vec<Location> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|i| match *i {
                Instruction::Ld { loc, .. }
                | Instruction::St { loc, .. }
                | Instruction::Atom { loc, .. }
                | Instruction::Red { loc, .. } => Some(loc),
                _ => None,
            })
            .collect();
        locs.sort();
        locs.dedup();
        locs
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Reg(r) => write!(f, "{r}"),
        }
    }
}

impl std::fmt::Display for RmwOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmwOp::Exch => write!(f, "exch"),
            RmwOp::Add => write!(f, "add"),
            RmwOp::Cas { cmp } => write!(f, "cas({cmp})"),
        }
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Instruction::Ld {
                sem,
                scope,
                dst,
                loc,
            } => match sem {
                LoadSem::Weak => write!(f, "ld.weak {dst}, [{loc}]"),
                LoadSem::Relaxed => write!(f, "ld.relaxed.{scope} {dst}, [{loc}]"),
                LoadSem::Acquire => write!(f, "ld.acquire.{scope} {dst}, [{loc}]"),
            },
            Instruction::St {
                sem,
                scope,
                loc,
                src,
            } => match sem {
                StoreSem::Weak => write!(f, "st.weak [{loc}], {src}"),
                StoreSem::Relaxed => write!(f, "st.relaxed.{scope} [{loc}], {src}"),
                StoreSem::Release => write!(f, "st.release.{scope} [{loc}], {src}"),
            },
            Instruction::Atom {
                sem,
                scope,
                dst,
                loc,
                op,
                src,
            } => {
                let sem = atom_sem_str(sem);
                write!(f, "atom.{sem}.{scope}.{op} {dst}, [{loc}], {src}")
            }
            Instruction::Red {
                sem,
                scope,
                loc,
                op,
                src,
            } => {
                let sem = atom_sem_str(sem);
                write!(f, "red.{sem}.{scope}.{op} [{loc}], {src}")
            }
            Instruction::Fence { sem, scope } => {
                let sem = match sem {
                    FenceSem::Acquire => "acquire",
                    FenceSem::Release => "release",
                    FenceSem::AcqRel => "acq_rel",
                    FenceSem::Sc => "sc",
                };
                write!(f, "fence.{sem}.{scope}")
            }
            Instruction::Bar { kind, bar } => {
                let kind = match kind {
                    BarKind::Sync => "sync",
                    BarKind::Arrive => "arrive",
                    BarKind::Red => "red",
                };
                write!(f, "bar.{kind} {}", bar.0)
            }
        }
    }
}

fn atom_sem_str(sem: AtomSem) -> &'static str {
    match sem {
        AtomSem::Relaxed => "relaxed",
        AtomSem::Acquire => "acquire",
        AtomSem::Release => "release",
        AtomSem::AcqRel => "acq_rel",
    }
}

impl std::fmt::Display for Program {
    /// Renders the program as aligned per-thread columns (the litmus text
    /// body format).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols: Vec<Vec<String>> = self
            .threads
            .iter()
            .map(|t| t.iter().map(|i| i.to_string()).collect())
            .collect();
        let widths: Vec<usize> = cols
            .iter()
            .enumerate()
            .map(|(i, c)| {
                c.iter()
                    .map(String::len)
                    .chain(std::iter::once(format!("P{i}").len()))
                    .max()
                    .unwrap_or(2)
            })
            .collect();
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{:<w$}", format!("P{i}"), w = w)?;
        }
        writeln!(f, " ;")?;
        let rows = cols.iter().map(Vec::len).max().unwrap_or(0);
        for r in 0..rows {
            for (i, c) in cols.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(
                    f,
                    "{:<w$}",
                    c.get(r).map(String::as_str).unwrap_or(""),
                    w = widths[i]
                )?;
            }
            writeln!(f, " ;")?;
        }
        Ok(())
    }
}

/// Convenience constructors for building litmus tests tersely.
pub mod build {
    use super::*;

    /// `ld.weak dst, [loc]`.
    pub fn ld_weak(dst: Register, loc: Location) -> Instruction {
        Instruction::Ld {
            sem: LoadSem::Weak,
            scope: Scope::Sys,
            dst,
            loc,
        }
    }

    /// `ld.relaxed.scope dst, [loc]`.
    pub fn ld_relaxed(scope: Scope, dst: Register, loc: Location) -> Instruction {
        Instruction::Ld {
            sem: LoadSem::Relaxed,
            scope,
            dst,
            loc,
        }
    }

    /// `ld.acquire.scope dst, [loc]`.
    pub fn ld_acquire(scope: Scope, dst: Register, loc: Location) -> Instruction {
        Instruction::Ld {
            sem: LoadSem::Acquire,
            scope,
            dst,
            loc,
        }
    }

    /// `st.weak [loc], imm`.
    pub fn st_weak(loc: Location, v: u64) -> Instruction {
        Instruction::St {
            sem: StoreSem::Weak,
            scope: Scope::Sys,
            loc,
            src: Operand::Imm(Value(v)),
        }
    }

    /// `st.weak [loc], reg`.
    pub fn st_weak_reg(loc: Location, r: Register) -> Instruction {
        Instruction::St {
            sem: StoreSem::Weak,
            scope: Scope::Sys,
            loc,
            src: Operand::Reg(r),
        }
    }

    /// `st.relaxed.scope [loc], imm`.
    pub fn st_relaxed(scope: Scope, loc: Location, v: u64) -> Instruction {
        Instruction::St {
            sem: StoreSem::Relaxed,
            scope,
            loc,
            src: Operand::Imm(Value(v)),
        }
    }

    /// `st.release.scope [loc], imm`.
    pub fn st_release(scope: Scope, loc: Location, v: u64) -> Instruction {
        Instruction::St {
            sem: StoreSem::Release,
            scope,
            loc,
            src: Operand::Imm(Value(v)),
        }
    }

    /// `fence.sc.scope`.
    pub fn fence_sc(scope: Scope) -> Instruction {
        Instruction::Fence {
            sem: FenceSem::Sc,
            scope,
        }
    }

    /// `fence.acq_rel.scope`.
    pub fn fence_acq_rel(scope: Scope) -> Instruction {
        Instruction::Fence {
            sem: FenceSem::AcqRel,
            scope,
        }
    }

    /// `fence.acquire.scope`.
    pub fn fence_acquire(scope: Scope) -> Instruction {
        Instruction::Fence {
            sem: FenceSem::Acquire,
            scope,
        }
    }

    /// `fence.release.scope`.
    pub fn fence_release(scope: Scope) -> Instruction {
        Instruction::Fence {
            sem: FenceSem::Release,
            scope,
        }
    }

    /// `atom.sem.scope.exch dst, [loc], imm`.
    pub fn atom_exch(
        sem: AtomSem,
        scope: Scope,
        dst: Register,
        loc: Location,
        v: u64,
    ) -> Instruction {
        Instruction::Atom {
            sem,
            scope,
            dst,
            loc,
            op: RmwOp::Exch,
            src: Operand::Imm(Value(v)),
        }
    }

    /// `atom.sem.scope.add dst, [loc], imm`.
    pub fn atom_add(
        sem: AtomSem,
        scope: Scope,
        dst: Register,
        loc: Location,
        v: u64,
    ) -> Instruction {
        Instruction::Atom {
            sem,
            scope,
            dst,
            loc,
            op: RmwOp::Add,
            src: Operand::Imm(Value(v)),
        }
    }

    /// `red.sem.scope.add [loc], imm`.
    pub fn red_add(sem: AtomSem, scope: Scope, loc: Location, v: u64) -> Instruction {
        Instruction::Red {
            sem,
            scope,
            loc,
            op: RmwOp::Add,
            src: Operand::Imm(Value(v)),
        }
    }

    /// `bar.sync bar`.
    pub fn bar_sync(bar: BarrierId) -> Instruction {
        Instruction::Bar {
            kind: BarKind::Sync,
            bar,
        }
    }

    /// `bar.arrive bar`.
    pub fn bar_arrive(bar: BarrierId) -> Instruction {
        Instruction::Bar {
            kind: BarKind::Arrive,
            bar,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_ops_apply() {
        assert_eq!(RmwOp::Exch.apply(Value(1), Value(9)), Value(9));
        assert_eq!(RmwOp::Add.apply(Value(1), Value(9)), Value(10));
        let cas = RmwOp::Cas { cmp: Value(1) };
        assert_eq!(cas.apply(Value(1), Value(9)), Value(9));
        assert_eq!(cas.apply(Value(2), Value(9)), Value(2));
    }

    #[test]
    fn fence_sides() {
        assert!(FenceSem::Sc.is_acquire() && FenceSem::Sc.is_release());
        assert!(FenceSem::AcqRel.is_acquire() && FenceSem::AcqRel.is_release());
        assert!(FenceSem::Acquire.is_acquire() && !FenceSem::Acquire.is_release());
        assert!(!FenceSem::Release.is_acquire() && FenceSem::Release.is_release());
    }

    #[test]
    fn program_locations() {
        use build::*;
        use memmodel::SystemLayout;
        let p = Program::new(
            vec![
                vec![st_weak(Location(1), 1), st_weak(Location(0), 1)],
                vec![ld_weak(Register(0), Location(1))],
            ],
            SystemLayout::single_cta(2),
        );
        assert_eq!(p.locations(), vec![Location(0), Location(1)]);
    }

    #[test]
    #[should_panic]
    fn layout_mismatch_panics() {
        Program::new(vec![vec![]], SystemLayout::single_cta(2));
    }

    #[test]
    fn display_roundtrips_through_the_parser_format() {
        use build::*;
        use memmodel::{BarrierId, Scope};
        // Every displayed instruction uses the litmus text syntax.
        for (i, expect) in [
            (ld_weak(Register(0), Location(0)), "ld.weak r0, [x]"),
            (
                ld_acquire(Scope::Gpu, Register(1), Location(1)),
                "ld.acquire.gpu r1, [y]",
            ),
            (st_weak(Location(0), 5), "st.weak [x], 5"),
            (
                st_release(Scope::Sys, Location(1), 1),
                "st.release.sys [y], 1",
            ),
            (fence_sc(Scope::Cta), "fence.sc.cta"),
            (
                atom_add(AtomSem::AcqRel, Scope::Gpu, Register(2), Location(0), 3),
                "atom.acq_rel.gpu.add r2, [x], 3",
            ),
            (
                red_add(AtomSem::Relaxed, Scope::Sys, Location(1), 1),
                "red.relaxed.sys.add [y], 1",
            ),
            (bar_sync(BarrierId(0)), "bar.sync 0"),
        ] {
            assert_eq!(i.to_string(), expect);
        }
    }

    #[test]
    fn program_display_is_columnar() {
        use build::*;
        let p = Program::new(
            vec![
                vec![st_weak(Location(0), 1), st_weak(Location(1), 1)],
                vec![ld_weak(Register(0), Location(1))],
            ],
            SystemLayout::single_cta(2),
        );
        let shown = p.to_string();
        assert!(shown.contains("P0"));
        assert!(shown.contains('|'));
        assert!(shown.lines().count() == 3);
    }
}
