//! The cumulative-across-scopes PTX draft model (`ptx_cummulative.als`).
//!
//! The paper's methodology compares memory-model variants by searching
//! for executions one model allows and another forbids. This module
//! formalizes the *other* side of that comparison: the membar-based
//! draft model whose Alloy source is preserved in `SNIPPETS.md` — a
//! scoped RMO built from nested per-scope acyclicity constraints with
//! cumulative fences, predating the axiomatic model's acquire/release
//! patterns and causality order.
//!
//! Both formulations here share the vocabulary of [`crate::event`] /
//! [`crate::exec`] (and, on the relational side, [`crate::alloy`]), so
//! the two models can be checked against the *same* candidate
//! executions and encoded into the *same* bounded universe:
//!
//! * [`check_all_cumulative`] is the bit-matrix checker, the analogue
//!   of [`crate::axioms::check_all`];
//! * [`axioms_named`] builds the constraints over a [`PtxVocab`], the
//!   analogue of [`PtxVocab::axioms_named`], for the model finder.
//!
//! # Mapping decisions
//!
//! The Alloy draft speaks `membar.{cta,gl,sys}` and scope-less memory
//! operations; our event structure carries scoped, flagged events. The
//! transliteration fixes:
//!
//! * A fence event acts as the membar of its *scope* qualifier
//!   (`.cta` → `membar.cta`, `.gpu` → `membar.gl`, `.sys` →
//!   `membar.sys`), regardless of its acquire/release/sc semantics —
//!   the draft model has no such distinctions.
//! * Memory-operation scopes and acquire/release flags are ignored
//!   entirely; only fences order anything beyond coherence,
//!   dependencies, and communication.
//! * `scta`/`sgl` relate events whose threads share a CTA/GPU. Init
//!   writes live on the internal init pseudo-thread (alone in its own
//!   CTA and GPU, exactly as the SAT universe pins it), so init writes
//!   are same-threaded with each other and external to every program
//!   thread.
//! * Both models quantify over the repo's candidate space — in
//!   particular the *partial* coherence order of §8.8.6, where the
//!   draft's `exec_H` assumed a per-location total. This is a
//!   deliberate formalization choice: verdicts of both models are
//!   always reported over identical witness sets.
//! * `atom` is the `rmw` pairing (read half → write half); `dp` is the
//!   expansion's syntactic dependency relation (`ad+dd+cd` collapses to
//!   data/RMW dependencies in our straight-line instruction set).

use memmodel::{RelMat, Scope, SystemLayout};
use relational::{patterns, Expr, Formula};

use crate::alloy::{bracket, PtxVocab};
use crate::axioms::check_all;
use crate::event::{EventKind, Expansion};
use crate::exec::{diag, Candidate};

/// Which bundled PTX consistency model to consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Model {
    /// The paper's axiomatic model (Figure 7; [`crate::axioms`]).
    Axiomatic,
    /// The cumulative-across-scopes draft model (this module).
    Cumulative,
}

/// Both models, axiomatic first.
pub const ALL_MODELS: [Model; 2] = [Model::Axiomatic, Model::Cumulative];

impl Model {
    /// The stable wire/CLI token: `"ptx"` / `"ptx-cumulative"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Model::Axiomatic => "ptx",
            Model::Cumulative => "ptx-cumulative",
        }
    }

    /// Parses the wire/CLI token accepted by `ptxdistill`/`ptxd`.
    pub fn parse(s: &str) -> Option<Model> {
        match s {
            "ptx" => Some(Model::Axiomatic),
            "ptx-cumulative" => Some(Model::Cumulative),
            _ => None,
        }
    }

    /// Whether `candidate` is a consistent execution under this model.
    pub fn consistent(
        self,
        expansion: &Expansion,
        layout: &SystemLayout,
        candidate: &Candidate,
    ) -> bool {
        match self {
            Model::Axiomatic => check_all(expansion, layout, candidate).is_consistent(),
            Model::Cumulative => check_all_cumulative(expansion, layout, candidate).is_consistent(),
        }
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One constraint of the cumulative model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CumulativeAxiom {
    /// `empty(rmw ∩ (fre ; coe))` — RMW atomicity over external
    /// communication.
    Atomicity,
    /// `acyclic(polocLLH ∪ rf ∪ fr ∪ co)` where `polocLLH` drops the
    /// read→read part of per-location program order (load-load hazards
    /// are permitted).
    ScPerLocLlh,
    /// `acyclic(dp ∪ rf)`.
    NoThinAir,
    /// `acyclic(rmo(iden, cta_fence) ∩ scta)`.
    CtaRmo,
    /// `acyclic(rmo(CTArmo*, gl_fence) ∩ sgl)` — the CTA-level order
    /// is carried *through* GPU-level fences (cumulativity).
    GlRmo,
    /// `acyclic(rmo(GLrmo*, sys_fence))`.
    SysRmo,
}

impl std::fmt::Display for CumulativeAxiom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CumulativeAxiom::Atomicity => "Atomicity",
            CumulativeAxiom::ScPerLocLlh => "ScPerLocLLH",
            CumulativeAxiom::NoThinAir => "No-Thin-Air",
            CumulativeAxiom::CtaRmo => "CTA-RMO",
            CumulativeAxiom::GlRmo => "GL-RMO",
            CumulativeAxiom::SysRmo => "SYS-RMO",
        })
    }
}

/// All six cumulative constraints, in source order.
pub const ALL_CUMULATIVE_AXIOMS: [CumulativeAxiom; 6] = [
    CumulativeAxiom::Atomicity,
    CumulativeAxiom::ScPerLocLlh,
    CumulativeAxiom::NoThinAir,
    CumulativeAxiom::CtaRmo,
    CumulativeAxiom::GlRmo,
    CumulativeAxiom::SysRmo,
];

/// The outcome of checking a candidate against the cumulative model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CumulativeCheck {
    /// Constraints the candidate violates (empty = consistent).
    pub violations: Vec<CumulativeAxiom>,
}

impl CumulativeCheck {
    /// Whether the candidate is a legal execution of the cumulative
    /// model.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks a candidate execution against the cumulative model.
pub fn check_all_cumulative(
    expansion: &Expansion,
    layout: &SystemLayout,
    candidate: &Candidate,
) -> CumulativeCheck {
    let n = expansion.len();
    let events = &expansion.events;

    let rf = candidate.rf_matrix(expansion);
    let co = &candidate.co;
    let fr = rf.transpose().compose(co);
    let com = rf.union(&fr).union(co);

    // External ("e") restriction: pairs on distinct threads. Init
    // writes all carry `thread: None` — the init pseudo-thread — so
    // they are internal to each other and external to everything else.
    let external = |m: &RelMat| m.filter(|i, j| events[i].thread != events[j].thread);
    let rfe = external(&rf);
    let fre = external(&fr);
    let coe = external(co);

    // polocLLH: per-location program order minus read→read pairs.
    let poloc_llh = expansion.po.filter(|i, j| {
        events[i].is_memory()
            && events[j].is_memory()
            && events[i].overlaps(&events[j])
            && !(events[i].kind == EventKind::Read && events[j].kind == EventKind::Read)
    });

    // Fence orders by level, cumulative downward: a `.sys` fence is
    // also a `.gl` and `.cta` fence.
    let lift = |scope: Scope| {
        let f = diag(n, |i| {
            events[i].kind == EventKind::Fence && events[i].scope == scope
        });
        expansion.po.compose(&f).compose(&expansion.po)
    };
    let sys_fence = lift(Scope::Sys);
    let gl_fence = lift(Scope::Gpu).union(&sys_fence);
    let cta_fence = lift(Scope::Cta).union(&gl_fence);

    // scta / sgl: event pairs whose threads share a CTA / GPU.
    let mut scta = RelMat::new(n);
    let mut sgl = RelMat::new(n);
    for a in events {
        for b in events {
            let (same_cta, same_gpu) = match (a.thread, b.thread) {
                (Some(ta), Some(tb)) => (layout.same_cta(ta, tb), layout.same_gpu(ta, tb)),
                (None, None) => (true, true),
                _ => (false, false),
            };
            if same_cta {
                scta.set(a.id, b.id);
            }
            if same_gpu {
                sgl.set(a.id, b.id);
            }
        }
    }

    // rmo(r, f) = dp ∪ rfe ∪ co ∪ fr ∪ (r ; f ; r), with `r` already
    // reflexively-transitively closed by the caller.
    let base = expansion.dep.union(&rfe).union(co).union(&fr);
    let rmo = |r_star: &RelMat, f: &RelMat| base.union(&r_star.compose(f).compose(r_star));

    let iden = RelMat::identity(n);
    let cta_rmo = rmo(&iden, &cta_fence).intersect(&scta);
    let gl_rmo = rmo(&cta_rmo.reflexive_transitive_closure(), &gl_fence).intersect(&sgl);
    let sys_rmo = rmo(&gl_rmo.reflexive_transitive_closure(), &sys_fence);

    let holds = |axiom: CumulativeAxiom| match axiom {
        CumulativeAxiom::Atomicity => fre.compose(&coe).intersect(&expansion.rmw).is_empty(),
        CumulativeAxiom::ScPerLocLlh => poloc_llh.union(&com).is_acyclic(),
        CumulativeAxiom::NoThinAir => expansion.dep.union(&rf).is_acyclic(),
        CumulativeAxiom::CtaRmo => cta_rmo.is_acyclic(),
        CumulativeAxiom::GlRmo => gl_rmo.is_acyclic(),
        CumulativeAxiom::SysRmo => sys_rmo.is_acyclic(),
    };
    let violations = ALL_CUMULATIVE_AXIOMS
        .iter()
        .copied()
        .filter(|&a| !holds(a))
        .collect();
    CumulativeCheck { violations }
}

/// The cumulative model's constraints over a relational vocabulary,
/// with their names — the analogue of [`PtxVocab::axioms_named`] for
/// the bounded model finder. `dep` is the syntactic dependency
/// relation the caller pins (or leaves empty for program-free search).
pub fn axioms_named(v: &PtxVocab, dep: &Expr) -> Vec<(&'static str, Formula)> {
    let same_thread = v.thread.join(&v.thread.transpose());
    let ext = |r: &Expr| r.difference(&same_thread);
    let fr = v.fr();
    let rfe = ext(&v.rf);
    let fre = ext(&fr);
    let coe = ext(&v.co);
    let com = v.rf.union(&fr).union(&v.co);

    let poloc_llh = v.po_loc().difference(&v.read.product(&v.read));

    let lift = |scope: &Expr| v.po.join(&bracket(&v.fence.intersect(scope))).join(&v.po);
    let sys_fence = lift(&v.scope_sys);
    let gl_fence = lift(&v.scope_gpu).union(&sys_fence);
    let cta_fence = lift(&v.scope_cta).union(&gl_fence);

    let scta = v.thread.join(&v.same_cta).join(&v.thread.transpose());
    let sgl = v.thread.join(&v.same_gpu).join(&v.thread.transpose());

    let base = dep.union(&rfe).union(&v.co).union(&fr);
    let rmo = |r_star: &Expr, f: &Expr| base.union(&r_star.join(f).join(r_star));

    let cta_rmo = base.union(&cta_fence).intersect(&scta); // rc[iden] ; f ; rc[iden] = f
    let gl_rmo = rmo(&cta_rmo.reflexive_closure(), &gl_fence).intersect(&sgl);
    let sys_rmo = rmo(&gl_rmo.reflexive_closure(), &sys_fence);

    vec![
        ("Atomicity", fre.join(&coe).intersect(&v.rmw).no()),
        ("ScPerLocLLH", patterns::acyclic(&poloc_llh.union(&com))),
        ("No-Thin-Air", patterns::acyclic(&dep.union(&v.rf))),
        ("CTA-RMO", patterns::acyclic(&cta_rmo)),
        ("GL-RMO", patterns::acyclic(&gl_rmo)),
        ("SYS-RMO", patterns::acyclic(&sys_rmo)),
    ]
}

/// The cumulative model's constraints as one conjunction.
pub fn axioms(v: &PtxVocab, dep: &Expr) -> Formula {
    Formula::and_all(axioms_named(v, dep).into_iter().map(|(_, f)| f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::expand;
    use crate::exec::init_co_edges;
    use crate::inst::build::*;
    use crate::inst::Program;
    use memmodel::{Location, Register, Scope, SystemLayout};
    use relational::{eval_formula, Atom, Instance, Schema, TupleSet};

    fn candidate(x: &Expansion, rf_source: Vec<usize>, extra_co: &[(usize, usize)]) -> Candidate {
        let mut co = RelMat::from_pairs(x.len(), init_co_edges(x));
        for &(a, b) in extra_co {
            co.set(a, b);
        }
        Candidate {
            rf_source,
            co,
            sc: RelMat::new(x.len()),
        }
    }

    /// CoRR with relaxed.sys accesses: the stale second read is a
    /// coherence violation under the axiomatic model (po_loc includes
    /// read→read) but consistent under the cumulative model
    /// (`polocLLH` drops load-load hazards and nothing else closes the
    /// cycle).
    #[test]
    fn corr_relaxed_distinguishes_the_models() {
        let p = Program::new(
            vec![
                vec![st_relaxed(Scope::Sys, Location(0), 1)],
                vec![
                    ld_relaxed(Scope::Sys, Register(0), Location(0)),
                    ld_relaxed(Scope::Sys, Register(1), Location(0)),
                ],
            ],
            SystemLayout::single_cta(2),
        );
        let layout = p.layout.clone();
        let x = expand(&p);
        // events: 0=init_x, 1=Wx, 2=Ra, 3=Rb. Ra sees the write, Rb init.
        let c = candidate(&x, vec![1, 0], &[]);
        assert!(!Model::Axiomatic.consistent(&x, &layout, &c));
        assert!(Model::Cumulative.consistent(&x, &layout, &c));
    }

    /// MP with release/acquire at gpu scope and no fences: forbidden by
    /// the axiomatic model (Causality), allowed by the cumulative draft
    /// (which predates acquire/release semantics entirely).
    #[test]
    fn mp_release_acquire_only_binds_the_axiomatic_model() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(Location(0), 1),
                    st_release(Scope::Gpu, Location(1), 1),
                ],
                vec![
                    ld_acquire(Scope::Gpu, Register(0), Location(1)),
                    ld_weak(Register(1), Location(0)),
                ],
            ],
            SystemLayout::cta_per_thread(2),
        );
        let layout = p.layout.clone();
        let x = expand(&p);
        // events: 0=init_x, 1=init_y, 2=Wx, 3=Wrel_y, 4=Racq_y, 5=Rx.
        let stale = candidate(&x, vec![3, 0], &[]);
        assert!(!Model::Axiomatic.consistent(&x, &layout, &stale));
        assert!(Model::Cumulative.consistent(&x, &layout, &stale));
        // Both models accept the synchronized outcome.
        let fresh = candidate(&x, vec![3, 2], &[]);
        assert!(Model::Axiomatic.consistent(&x, &layout, &fresh));
        assert!(Model::Cumulative.consistent(&x, &layout, &fresh));
    }

    /// SB with weak accesses around `fence.acq_rel.cta` in one CTA: the
    /// both-stale outcome is consistent under the axiomatic model (weak
    /// communication is never morally strong, acq_rel fences without sc
    /// order induce no sw) but cyclic in the cumulative CTA-RMO
    /// (`po;[membar];po` orders regardless of flags).
    #[test]
    fn sb_weak_fences_cumulative_forbids() {
        let p = Program::new(
            vec![
                vec![
                    st_weak(Location(0), 1),
                    fence_acq_rel(Scope::Cta),
                    ld_weak(Register(0), Location(1)),
                ],
                vec![
                    st_weak(Location(1), 1),
                    fence_acq_rel(Scope::Cta),
                    ld_weak(Register(1), Location(0)),
                ],
            ],
            SystemLayout::single_cta(2),
        );
        let layout = p.layout.clone();
        let x = expand(&p);
        // events: 0=init_x, 1=init_y, 2=Wx, 3=F, 4=Ry, 5=Wy, 6=F, 7=Rx.
        let both_stale = candidate(&x, vec![1, 0], &[]);
        assert!(Model::Axiomatic.consistent(&x, &layout, &both_stale));
        let check = check_all_cumulative(&x, &layout, &both_stale);
        assert!(check.violations.contains(&CumulativeAxiom::CtaRmo));
    }

    /// The same shape across CTAs of one GPU: a `.cta` fence no longer
    /// orders it, a `.gpu` fence does (the per-scope nesting).
    #[test]
    fn fence_scope_must_cover_the_communicating_threads() {
        let build = |scope: Scope| {
            Program::new(
                vec![
                    vec![
                        st_weak(Location(0), 1),
                        fence_acq_rel(scope),
                        ld_weak(Register(0), Location(1)),
                    ],
                    vec![
                        st_weak(Location(1), 1),
                        fence_acq_rel(scope),
                        ld_weak(Register(1), Location(0)),
                    ],
                ],
                SystemLayout::cta_per_thread(2),
            )
        };
        for (scope, consistent) in [(Scope::Cta, true), (Scope::Gpu, false)] {
            let p = build(scope);
            let layout = p.layout.clone();
            let x = expand(&p);
            let both_stale = candidate(&x, vec![1, 0], &[]);
            assert_eq!(
                Model::Cumulative.consistent(&x, &layout, &both_stale),
                consistent,
                "fence scope {scope}"
            );
        }
    }

    /// Evaluates the relational formulation on instances derived from
    /// concrete candidates (same atom layout as the SAT universe) and
    /// checks per-constraint agreement with the bit-matrix checker.
    #[test]
    fn relational_encoding_agrees_with_the_matrix_checker() {
        let scenarios: Vec<(Program, Vec<usize>)> = vec![
            (
                Program::new(
                    vec![
                        vec![st_relaxed(Scope::Sys, Location(0), 1)],
                        vec![
                            ld_relaxed(Scope::Sys, Register(0), Location(0)),
                            ld_relaxed(Scope::Sys, Register(1), Location(0)),
                        ],
                    ],
                    SystemLayout::single_cta(2),
                ),
                vec![1, 0],
            ),
            (
                Program::new(
                    vec![
                        vec![
                            st_weak(Location(0), 1),
                            fence_acq_rel(Scope::Cta),
                            ld_weak(Register(0), Location(1)),
                        ],
                        vec![
                            st_weak(Location(1), 1),
                            fence_acq_rel(Scope::Cta),
                            ld_weak(Register(1), Location(0)),
                        ],
                    ],
                    SystemLayout::single_cta(2),
                ),
                vec![1, 0],
            ),
            (
                Program::new(
                    vec![
                        vec![
                            st_weak(Location(0), 1),
                            st_release(Scope::Gpu, Location(1), 1),
                        ],
                        vec![
                            ld_acquire(Scope::Gpu, Register(0), Location(1)),
                            ld_weak(Register(1), Location(0)),
                        ],
                    ],
                    SystemLayout::cta_per_thread(2),
                ),
                vec![3, 2],
            ),
        ];
        for (p, rf_source) in scenarios {
            let layout = p.layout.clone();
            let x = expand(&p);
            let c = candidate(&x, rf_source, &[]);
            let matrix = check_all_cumulative(&x, &layout, &c);

            let mut schema = Schema::new();
            let v = PtxVocab::declare(&mut schema, "p_");
            let dep = Expr::Rel(schema.relation("p_dep", 2));
            let locs = p.locations();
            let threads = p.num_threads();
            let n = x.len() + threads + 1 + locs.len();
            let inst = instance_of(&schema, &v, &dep, &x, &layout, &c, &locs, threads, n);

            for (name, f) in axioms_named(&v, &dep) {
                let holds = eval_formula(&schema, &inst, &f).unwrap();
                let matrix_holds = !matrix.violations.iter().any(|a| a.to_string() == name);
                assert_eq!(holds, matrix_holds, "{name} on {}", p.layout.num_threads());
            }
        }
    }

    /// Builds a concrete relational instance for a candidate, using the
    /// SAT universe's atom layout: events, program threads, the init
    /// thread, then locations.
    #[allow(clippy::too_many_arguments)]
    fn instance_of(
        schema: &Schema,
        v: &PtxVocab,
        dep: &Expr,
        x: &Expansion,
        layout: &SystemLayout,
        c: &Candidate,
        locs: &[Location],
        threads: usize,
        n: usize,
    ) -> Instance {
        use crate::event::Event;
        let e = x.len();
        let thread_atom = |t: memmodel::ThreadId| (e + t.0 as usize) as Atom;
        let init_thread = (e + threads) as Atom;
        let loc_atom =
            |l: Location| (e + threads + 1 + locs.iter().position(|&m| m == l).unwrap()) as Atom;
        let mut inst = Instance::empty(schema, n);
        let mut set = |expr: &Expr, ts: TupleSet| {
            if let Expr::Rel(r) = expr {
                inst.set(*r, ts);
            }
        };
        let events_where = |pred: &dyn Fn(&Event) -> bool| {
            TupleSet::from_atoms(x.events.iter().filter(|e| pred(e)).map(|e| e.id as Atom))
        };
        set(&v.ev, TupleSet::from_atoms(0..e as Atom));
        set(&v.read, events_where(&|e| e.kind == EventKind::Read));
        set(&v.write, events_where(&|e| e.kind == EventKind::Write));
        set(&v.fence, events_where(&|e| e.kind == EventKind::Fence));
        set(&v.barrier, events_where(&|e| e.kind == EventKind::Barrier));
        set(&v.strong, events_where(&|e| e.strong));
        set(&v.acq, events_where(&|e| e.acquire));
        set(&v.rel, events_where(&|e| e.release));
        set(&v.sc_fence, events_where(&|e| e.sc_fence));
        set(&v.scope_cta, events_where(&|e| e.scope == Scope::Cta));
        set(&v.scope_gpu, events_where(&|e| e.scope == Scope::Gpu));
        set(&v.scope_sys, events_where(&|e| e.scope == Scope::Sys));
        set(
            &v.loc,
            TupleSet::from_pairs(
                x.events
                    .iter()
                    .filter_map(|ev| ev.loc.map(|l| (ev.id as Atom, loc_atom(l)))),
            ),
        );
        set(
            &v.thread,
            TupleSet::from_pairs(x.events.iter().map(|ev| {
                (
                    ev.id as Atom,
                    ev.thread.map(thread_atom).unwrap_or(init_thread),
                )
            })),
        );
        let rel_pairs =
            |m: &RelMat| TupleSet::from_pairs(m.pairs().map(|(a, b)| (a as Atom, b as Atom)));
        set(&v.po, rel_pairs(&x.po));
        set(&v.rf, rel_pairs(&c.rf_matrix(x)));
        set(&v.co, rel_pairs(&c.co));
        set(&v.sc, rel_pairs(&c.sc));
        set(&v.rmw, rel_pairs(&x.rmw));
        set(&v.syncbarrier, rel_pairs(&x.syncbarrier));
        set(dep, rel_pairs(&x.dep));
        let mut cta_pairs = vec![(init_thread, init_thread)];
        let mut gpu_pairs = vec![(init_thread, init_thread)];
        for a in 0..threads {
            for b in 0..threads {
                let (ta, tb) = (memmodel::ThreadId(a as u32), memmodel::ThreadId(b as u32));
                if layout.same_cta(ta, tb) {
                    cta_pairs.push((thread_atom(ta), thread_atom(tb)));
                }
                if layout.same_gpu(ta, tb) {
                    gpu_pairs.push((thread_atom(ta), thread_atom(tb)));
                }
            }
        }
        set(&v.same_cta, TupleSet::from_pairs(cta_pairs));
        set(&v.same_gpu, TupleSet::from_pairs(gpu_pairs));
        set(
            &v.threads,
            TupleSet::from_atoms((e as Atom)..(e + threads + 1) as Atom),
        );
        inst
    }
}
