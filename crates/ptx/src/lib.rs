//! A formal axiomatic model of the NVIDIA PTX 6.0 memory consistency model.
//!
//! This crate is the primary contribution of the reproduced paper (Lustig,
//! Sahasrabuddhe, Giroux, *A Formal Analysis of the NVIDIA PTX Memory
//! Consistency Model*, ASPLOS 2019): a machine-executable formalization of
//! PTX §8 "Memory Consistency Model".
//!
//! * [`inst`]: the modeled instruction set (`ld`, `st`, `atom`, `red`,
//!   `fence`, `bar` with their `.sem`/`.scope` qualifiers — paper Fig. 3);
//! * [`event`]: expansion of straight-line programs into events, with
//!   program order, dependencies, `rmw` pairs, and barrier edges;
//! * [`exec`]: candidate executions and the derived relations
//!   (moral strength, `obs`, `pattern_rel/acq`, `sw`, `cause` — Fig. 4);
//! * [`axioms`]: the six axioms (Coherence, FenceSC, Atomicity,
//!   No-Thin-Air, SC-per-Location, Causality — Fig. 7);
//! * [`enumerate`]: exhaustive enumeration of consistent executions, the
//!   engine behind the litmus-test runner;
//! * [`alloy`]: the same model as bounded relational constraints for the
//!   Kodkod-style model finder, used to verify the scoped C++ mapping;
//! * [`cumulative`]: the cumulative-across-scopes draft model
//!   (`ptx_cummulative.als`), checkable against the same candidate
//!   executions — the second model of the distinguishing search.
//!
//! # Examples
//!
//! Message passing with acquire/release (paper Figure 5):
//!
//! ```
//! use memmodel::{Location, Register, Scope, SystemLayout};
//! use ptx::inst::build::*;
//! use ptx::inst::Program;
//! use ptx::enumerate::enumerate_executions;
//!
//! let (x, y) = (Location(0), Location(1));
//! let program = Program::new(
//!     vec![
//!         vec![st_weak(x, 1), st_release(Scope::Gpu, y, 1)],
//!         vec![ld_acquire(Scope::Gpu, Register(0), y), ld_weak(Register(1), x)],
//!     ],
//!     SystemLayout::cta_per_thread(2),
//! );
//! let executions = enumerate_executions(&program);
//! // The stale outcome r0 == 1 && r1 == 0 is forbidden:
//! assert!(!executions.any_execution(|e| {
//!     e.final_registers[&(memmodel::ThreadId(1), Register(0))].0 == 1
//!         && e.final_registers[&(memmodel::ThreadId(1), Register(1))].0 == 0
//! }));
//! ```

#![warn(missing_docs)]

pub mod alloy;
pub mod axioms;
pub mod cumulative;
pub mod enumerate;
pub mod event;
pub mod exec;
pub mod inst;

pub use axioms::{check_all, check_axiom, Axiom, AxiomCheck, ALL_AXIOMS};
pub use cumulative::{
    check_all_cumulative, CumulativeAxiom, CumulativeCheck, Model, ALL_CUMULATIVE_AXIOMS,
    ALL_MODELS,
};
pub use enumerate::{
    enumerate_executions, enumerate_executions_model, visit_candidates, ConsistentExecution,
    Enumeration, EnumerationStats,
};
pub use event::{expand, Event, EventKind, Expansion};
pub use exec::{evaluate_values, morally_strong, Candidate, Relations, ValueMap};
pub use inst::{
    AtomSem, BarKind, FenceSem, Instruction, LoadSem, Operand, Program, RmwOp, StoreSem,
};
