//! Property tests for the observability registry: span nesting under
//! threads, and counter monotonicity/additivity under the merge path
//! the worker-pool harness uses to fold per-query registries into a
//! run total.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obs::Registry;
use testkit::{forall, Rng};

const COUNTER_NAMES: &[&str] = &[
    "solver.propagations",
    "solver.conflicts",
    "circuit.gates",
    "harness.queries",
];

/// Randomly bump counters on `reg`, returning the per-name totals.
fn random_bumps(reg: &Registry, rng: &mut Rng) -> BTreeMap<String, u64> {
    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    for _ in 0..rng.range(1, 40) {
        let name = COUNTER_NAMES[rng.index(COUNTER_NAMES.len())];
        let n = rng.below(1000);
        reg.add(name, n);
        *expected.entry(name.to_string()).or_default() += n;
    }
    expected
}

#[test]
fn merged_counters_are_exactly_additive() {
    forall("obs.merge_additive", 200, |rng| {
        let a = Registry::new();
        let b = Registry::new();
        let ea = random_bumps(&a, rng);
        let eb = random_bumps(&b, rng);

        // The harness worker-pool shape: fold per-query registries into
        // a shared total, in either order.
        let total = Registry::new();
        if rng.flip() {
            total.merge_from(&a);
            total.merge_from(&b);
        } else {
            total.merge_from(&b);
            total.merge_from(&a);
        }

        let snap = total.snapshot();
        let mut want: BTreeMap<String, u64> = ea;
        for (k, v) in eb {
            *want.entry(k).or_default() += v;
        }
        assert_eq!(snap.counters, want, "merge must be exactly additive");

        // Sources are unharmed and snapshots agree with what we bumped.
        for (k, v) in &snap.counters {
            assert_eq!(
                a.snapshot().counter(k) + b.snapshot().counter(k),
                *v,
                "sources changed by merge"
            );
        }
    });
}

#[test]
fn counters_are_monotone_under_concurrent_bumps() {
    forall("obs.monotone", 20, |rng| {
        let reg = Registry::new();
        let threads = rng.range(2, 5) as usize;
        let bumps = rng.range(10, 200);
        let stop = Arc::new(AtomicU64::new(0));

        // A reader thread snapshots concurrently and asserts that every
        // counter only ever grows.
        let reader = {
            let reg = reg.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last: BTreeMap<String, u64> = BTreeMap::new();
                while stop.load(Ordering::Acquire) == 0 {
                    let snap = reg.snapshot();
                    for (name, v) in &snap.counters {
                        let prev = last.get(name).copied().unwrap_or(0);
                        assert!(*v >= prev, "counter {name} went backwards: {prev} -> {v}");
                    }
                    last = snap.counters;
                }
            })
        };

        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("solver.propagations");
                    for _ in 0..bumps {
                        c.incr();
                        reg.add("harness.queries", t as u64 + 1);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        stop.store(1, Ordering::Release);
        reader.join().unwrap();

        let snap = reg.snapshot();
        assert_eq!(snap.counter("solver.propagations"), threads as u64 * bumps);
        let sum_ids: u64 = (1..=threads as u64).sum();
        assert_eq!(snap.counter("harness.queries"), sum_ids * bumps);
    });
}

#[test]
fn spans_nest_per_thread_without_cross_talk() {
    forall("obs.span_nesting", 30, |rng| {
        let reg = Registry::new();
        let threads = rng.range(2, 6) as usize;
        let reps = rng.range(1, 8);

        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..reps {
                        let _outer = reg.span("outer");
                        {
                            let _mid = reg.span("mid");
                            let _leaf = reg.span("leaf");
                        }
                        // Sibling after the nested pair closed: still a
                        // direct child of `outer`.
                        let _sib = reg.span("sib");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = reg.snapshot();
        let expect = threads as u64 * reps;
        let paths: Vec<&str> = snap.timings.keys().map(String::as_str).collect();
        assert_eq!(
            paths,
            vec!["outer", "outer.mid", "outer.mid.leaf", "outer.sib"],
            "span paths must reflect per-thread nesting only"
        );
        for (path, t) in &snap.timings {
            assert_eq!(t.count, expect, "span {path} count");
        }
    });
}

#[test]
fn merge_prefixed_composes_with_totals() {
    forall("obs.merge_prefixed", 100, |rng| {
        let total = Registry::new();
        let mut want_total: BTreeMap<String, u64> = BTreeMap::new();
        let queries = rng.range(1, 6);
        for q in 0..queries {
            let per_query = Registry::new();
            let bumped = random_bumps(&per_query, rng);
            total.merge_from(&per_query);
            total.merge_prefixed(&per_query, &format!("test.q{q}."));
            for (k, v) in bumped {
                *want_total.entry(k.clone()).or_default() += v;
                *want_total.entry(format!("test.q{q}.{k}")).or_default() += v;
            }
        }
        assert_eq!(total.snapshot().counters, want_total);
    });
}
