//! A dependency-free, lock-free event tracer with per-thread ring
//! buffers — the workspace's flight recorder.
//!
//! [`crate::Registry`] answers *how much* (aggregate counters and
//! timings); this module answers *when* and *in what order*: a
//! [`Tracer`] records typed events — span begin/end, instants, counter
//! samples — with monotonic timestamps into fixed-capacity per-thread
//! rings, so tracing can stay always-on at bounded memory. When the ring
//! wraps, the oldest events are overwritten and the newest survive,
//! which is exactly the "what was the solver doing when the deadline
//! fired" question a postmortem needs.
//!
//! Design:
//!
//! * The hot path is lock-free and owner-thread-only: each thread writes
//!   to its own ring, publishing every slot through a seqlock (an odd
//!   sequence number while the slot is mid-write, an even one encoding
//!   the event index once complete). Readers on other threads — snapshot
//!   export, the harness's abandonment autopsy — validate the sequence
//!   word before and after reading and simply skip slots that are being
//!   overwritten; no reader ever blocks a writer.
//! * Event names are interned once (a [`NameId`]) so instrumented hot
//!   loops emit events without touching the intern lock; the string is
//!   resolved only at snapshot time.
//! * Like [`crate::Registry`], a [`Tracer`] is an `Option<Arc>` handle:
//!   the [`Tracer::disabled`] default records nothing and never reads
//!   the clock.
//!
//! Consumers: [`TraceSnapshot::to_chrome_json`] renders the Chrome
//! trace-event JSON that Perfetto / `chrome://tracing` load (see the
//! `traceview` binary for an offline summarizer), and [`Autopsy`]
//! packages the last few events plus a counter snapshot onto a
//! timed-out query's record.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::json;

/// Default ring capacity (events per thread) for the always-on flight
/// recorder: small enough to be free, large enough that a timed-out
/// query's final phase is still in the buffer.
pub const FLIGHT_RECORDER_EVENTS: usize = 4096;

/// Ring capacity used when a full timeline export was requested
/// (`--trace-out`): large enough that a bench-sized sweep does not wrap.
pub const EXPORT_EVENTS: usize = 1 << 16;

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened (paired with [`TraceEventKind::SpanEnd`] by name).
    SpanBegin,
    /// A span closed.
    SpanEnd,
    /// A point event (restart, reduce sweep, downgrade, …); `value`
    /// carries a kind-specific payload.
    Instant,
    /// A counter sample: `value` is the counter's running total at the
    /// timestamp.
    Counter,
}

impl TraceEventKind {
    fn from_code(code: u64) -> Option<TraceEventKind> {
        match code {
            0 => Some(TraceEventKind::SpanBegin),
            1 => Some(TraceEventKind::SpanEnd),
            2 => Some(TraceEventKind::Instant),
            3 => Some(TraceEventKind::Counter),
            _ => None,
        }
    }

    /// The Chrome trace-event phase letter for this kind.
    pub fn phase(self) -> char {
        match self {
            TraceEventKind::SpanBegin => 'B',
            TraceEventKind::SpanEnd => 'E',
            TraceEventKind::Instant => 'i',
            TraceEventKind::Counter => 'C',
        }
    }
}

/// An interned event name; obtained from [`Tracer::intern`]. Emitting
/// through a `NameId` keeps the hot path free of the intern lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameId(u32);

/// The sentinel id handed out by a disabled tracer.
const NAME_NONE: u32 = u32::MAX;

/// One decoded event read back out of a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Ring (thread) id the event was recorded on.
    pub tid: u32,
    /// The event's index within its thread's stream (monotone per tid).
    pub seq: u64,
    /// Time since the tracer was created.
    pub ts: Duration,
    /// Event kind.
    pub kind: TraceEventKind,
    /// Resolved event name.
    pub name: String,
    /// Kind-specific payload (0 for spans).
    pub value: u64,
}

/// One ring slot: a seqlock of four atomics. `seq` is `2*i + 1` while
/// the event with index `i` is being written and `2*i + 2` once it is
/// complete, so a reader can tell exactly which event a slot holds and
/// whether it is torn.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    meta: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

/// A per-thread ring. Only the owning thread writes; any thread reads.
struct Ring {
    tid: u32,
    label: Mutex<String>,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

struct Shared {
    /// Globally unique tracer id, keying the thread-local ring cache
    /// (an `Arc` pointer address could be reused after a drop).
    uid: u64,
    capacity: usize,
    epoch: Instant,
    names: Mutex<Vec<String>>,
    rings: Mutex<Vec<Arc<Ring>>>,
}

impl Shared {
    fn register_thread(&self) -> Arc<Ring> {
        let mut rings = self.rings.lock().unwrap();
        let tid = rings.len() as u32;
        let ring = Arc::new(Ring {
            tid,
            label: Mutex::new(format!("thread-{tid}")),
            head: AtomicU64::new(0),
            slots: (0..self.capacity).map(|_| Slot::new()).collect(),
        });
        rings.push(Arc::clone(&ring));
        ring
    }
}

struct ThreadRing {
    uid: u64,
    shared: Weak<Shared>,
    ring: Arc<Ring>,
}

thread_local! {
    /// This thread's ring per live tracer, keyed by tracer uid. Entries
    /// for dropped tracers are pruned on the next miss.
    static THREAD_RINGS: RefCell<Vec<ThreadRing>> = const { RefCell::new(Vec::new()) };
}

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// A lock-free event tracer handle (an `Option<Arc>`): clones share the
/// rings, and the [`Tracer::disabled`] default carries nothing at all.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(s) => write!(f, "Tracer(capacity={})", s.capacity),
        }
    }
}

impl Tracer {
    /// A tracer whose per-thread rings hold `capacity` events (rounded
    /// up to a power of two, minimum 16). Older events are overwritten
    /// once a ring is full.
    pub fn with_capacity(capacity: usize) -> Tracer {
        let capacity = capacity.max(16).next_power_of_two();
        Tracer {
            inner: Some(Arc::new(Shared {
                uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
                capacity,
                epoch: Instant::now(),
                names: Mutex::new(Vec::new()),
                rings: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The always-on configuration: a small ring per thread
    /// ([`FLIGHT_RECORDER_EVENTS`]) keeping the most recent events for
    /// postmortems at bounded memory.
    pub fn flight_recorder() -> Tracer {
        Tracer::with_capacity(FLIGHT_RECORDER_EVENTS)
    }

    /// The export configuration ([`EXPORT_EVENTS`] per thread), for
    /// `--trace-out` timelines that should not wrap.
    pub fn for_export() -> Tracer {
        Tracer::with_capacity(EXPORT_EVENTS)
    }

    /// The inert tracer: every operation is a no-op and the clock is
    /// never read. This is the `Default`.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// True when this tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Interns `name`, returning an id that emits without locking.
    /// Disabled tracers return a sentinel id that records nothing.
    pub fn intern(&self, name: &str) -> NameId {
        let Some(shared) = &self.inner else {
            return NameId(NAME_NONE);
        };
        let mut names = shared.names.lock().unwrap();
        if let Some(idx) = names.iter().position(|n| n == name) {
            return NameId(idx as u32);
        }
        names.push(name.to_string());
        NameId((names.len() - 1) as u32)
    }

    /// Runs `f` with this thread's ring, creating and registering the
    /// ring on first use. Returns `None` when disabled.
    fn with_ring<R>(&self, f: impl FnOnce(&Shared, &Ring) -> R) -> Option<R> {
        let shared = self.inner.as_ref()?;
        THREAD_RINGS.with(|cell| {
            let mut list = cell.borrow_mut();
            if let Some(entry) = list.iter().find(|e| e.uid == shared.uid) {
                return Some(f(shared, &entry.ring));
            }
            list.retain(|e| e.shared.strong_count() > 0);
            let ring = shared.register_thread();
            let out = f(shared, &ring);
            list.push(ThreadRing {
                uid: shared.uid,
                shared: Arc::downgrade(shared),
                ring,
            });
            Some(out)
        })
    }

    /// The lock-free write path: publish one event through the owner
    /// thread's ring. Ordering is `SeqCst` throughout — events are rare
    /// compared to the work they bracket, so simplicity wins.
    fn emit(&self, kind: TraceEventKind, name: NameId, value: u64) {
        if name.0 == NAME_NONE {
            return;
        }
        self.with_ring(|shared, ring| {
            let i = ring.head.load(Ordering::SeqCst);
            let slot = &ring.slots[(i as usize) & (shared.capacity - 1)];
            slot.seq.store(2 * i + 1, Ordering::SeqCst);
            slot.ts
                .store(shared.epoch.elapsed().as_nanos() as u64, Ordering::SeqCst);
            slot.meta
                .store(((kind as u64) << 32) | u64::from(name.0), Ordering::SeqCst);
            slot.value.store(value, Ordering::SeqCst);
            slot.seq.store(2 * i + 2, Ordering::SeqCst);
            ring.head.store(i + 1, Ordering::SeqCst);
        });
    }

    /// Opens an RAII span named `name`: a begin event now, an end event
    /// when the returned guard drops. Spans nest per thread; drop them
    /// in reverse open order on the thread that opened them.
    pub fn span(&self, name: &str) -> TraceSpan {
        self.span_id(self.intern(name))
    }

    /// [`Tracer::span`] through a pre-interned id (the hot-path form).
    pub fn span_id(&self, name: NameId) -> TraceSpan {
        self.emit(TraceEventKind::SpanBegin, name, 0);
        TraceSpan {
            tracer: self.clone(),
            name,
        }
    }

    /// Records a point event carrying `value`.
    pub fn instant(&self, name: &str, value: u64) {
        self.instant_id(self.intern(name), value);
    }

    /// [`Tracer::instant`] through a pre-interned id.
    pub fn instant_id(&self, name: NameId, value: u64) {
        self.emit(TraceEventKind::Instant, name, value);
    }

    /// Records a counter sample: the running total `value` at this
    /// moment (rendered as a counter track by Perfetto).
    pub fn counter(&self, name: &str, value: u64) {
        self.counter_id(self.intern(name), value);
    }

    /// [`Tracer::counter`] through a pre-interned id.
    pub fn counter_id(&self, name: NameId, value: u64) {
        self.emit(TraceEventKind::Counter, name, value);
    }

    /// Names the current thread's ring (`worker-0`, …) in exports.
    pub fn set_thread_label(&self, label: &str) {
        self.with_ring(|_, ring| {
            *ring.label.lock().unwrap() = label.to_string();
        });
    }

    /// The newest `k` events recorded by the *current* thread, oldest
    /// first. Owner-thread reads are never torn.
    pub fn tail_current_thread(&self, k: usize) -> Vec<TraceEvent> {
        self.with_ring(|shared, ring| {
            let mut events = read_ring(shared, ring);
            if events.len() > k {
                events.drain(..events.len() - k);
            }
            events
        })
        .unwrap_or_default()
    }

    /// The newest `k` events across *all* threads, merged by timestamp,
    /// oldest first. Slots mid-overwrite on other threads are skipped.
    pub fn tail(&self, k: usize) -> Vec<TraceEvent> {
        let Some(shared) = &self.inner else {
            return Vec::new();
        };
        let rings: Vec<Arc<Ring>> = shared.rings.lock().unwrap().clone();
        let mut events: Vec<TraceEvent> = Vec::new();
        for ring in &rings {
            events.extend(read_ring(shared, ring));
        }
        events.sort_by_key(|e| (e.ts, e.tid, e.seq));
        if events.len() > k {
            events.drain(..events.len() - k);
        }
        events
    }

    /// A point-in-time copy of every surviving event, per-thread labels,
    /// and the count of events lost to ring wraparound. Disabled tracers
    /// snapshot empty.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut snap = TraceSnapshot::default();
        let Some(shared) = &self.inner else {
            return snap;
        };
        let rings: Vec<Arc<Ring>> = shared.rings.lock().unwrap().clone();
        for ring in &rings {
            snap.threads
                .push((ring.tid, ring.label.lock().unwrap().clone()));
            let head = ring.head.load(Ordering::SeqCst);
            snap.dropped += head.saturating_sub(shared.capacity as u64);
            snap.events.extend(read_ring(shared, ring));
        }
        snap.threads.sort_by_key(|(tid, _)| *tid);
        snap.events.sort_by_key(|e| (e.tid, e.seq));
        snap
    }
}

/// Decodes the surviving events of one ring, oldest first.
fn read_ring(shared: &Shared, ring: &Ring) -> Vec<TraceEvent> {
    let head = ring.head.load(Ordering::SeqCst);
    let lo = head.saturating_sub(shared.capacity as u64);
    let names = shared.names.lock().unwrap();
    let mut out = Vec::with_capacity((head - lo) as usize);
    for i in lo..head {
        let slot = &ring.slots[(i as usize) & (shared.capacity - 1)];
        let seq1 = slot.seq.load(Ordering::SeqCst);
        if seq1 != 2 * i + 2 {
            continue; // torn: mid-write or already overwritten
        }
        let ts = slot.ts.load(Ordering::SeqCst);
        let meta = slot.meta.load(Ordering::SeqCst);
        let value = slot.value.load(Ordering::SeqCst);
        if slot.seq.load(Ordering::SeqCst) != seq1 {
            continue; // overwritten while reading the fields
        }
        let Some(kind) = TraceEventKind::from_code(meta >> 32) else {
            continue;
        };
        let Some(name) = names.get((meta & 0xffff_ffff) as usize) else {
            continue;
        };
        out.push(TraceEvent {
            tid: ring.tid,
            seq: i,
            ts: Duration::from_nanos(ts),
            kind,
            name: name.clone(),
            value,
        });
    }
    out
}

/// An open trace span; see [`Tracer::span`]. Emits the matching end
/// event when dropped.
#[must_use = "a span brackets nothing unless it lives across the traced work"]
pub struct TraceSpan {
    tracer: Tracer,
    name: NameId,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.tracer.emit(TraceEventKind::SpanEnd, self.name, 0);
    }
}

/// A point-in-time copy of a [`Tracer`]'s rings, ready for export.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Surviving events, ordered by (tid, seq) — i.e. per-thread streams
    /// concatenated in thread order, each in recording order.
    pub events: Vec<TraceEvent>,
    /// `(tid, label)` for every ring that recorded.
    pub threads: Vec<(u32, String)>,
    /// Events lost to ring wraparound across all threads.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Renders the snapshot in Chrome trace-event JSON — an array of
    /// event objects, loadable in Perfetto or `chrome://tracing`. One
    /// object per line so line-oriented tools can grep it; `ts` is in
    /// microseconds as the format requires. Thread labels are emitted as
    /// `thread_name` metadata events.
    pub fn to_chrome_json(&self) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(self.events.len() + self.threads.len());
        for (tid, label) in &self.threads {
            let mut s = String::new();
            s.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":");
            let _ = write!(s, "{tid}");
            s.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":");
            json::escape_into(&mut s, label);
            s.push_str("}}");
            lines.push(s);
        }
        for e in &self.events {
            let mut s = String::new();
            let _ = write!(
                s,
                "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":",
                e.kind.phase(),
                e.tid,
                e.ts.as_nanos() as f64 / 1000.0
            );
            json::escape_into(&mut s, &e.name);
            match e.kind {
                TraceEventKind::SpanBegin | TraceEventKind::SpanEnd => {}
                TraceEventKind::Instant => {
                    let _ = write!(s, ",\"s\":\"t\",\"args\":{{\"value\":{}}}", e.value);
                }
                TraceEventKind::Counter => {
                    let _ = write!(s, ",\"args\":{{\"value\":{}}}", e.value);
                }
            }
            s.push('}');
            lines.push(s);
        }
        let mut out = String::from("[\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]\n");
        out
    }
}

/// A timed-out or cancelled query's postmortem: the last few
/// flight-recorder events plus a snapshot of the query's counters,
/// attached to its harness record and surfaced in `--json` output.
#[derive(Debug, Clone, Default)]
pub struct Autopsy {
    /// The newest flight-recorder events at capture time, oldest first.
    pub events: Vec<TraceEvent>,
    /// The query's counter values at capture time.
    pub counters: BTreeMap<String, u64>,
}

impl Autopsy {
    /// Packages `events` with the counters of `obs`'s snapshot.
    pub fn capture(events: Vec<TraceEvent>, obs: &crate::Registry) -> Autopsy {
        Autopsy {
            events,
            counters: obs.snapshot().counters,
        }
    }

    /// True when there is nothing to report (tracing and stats both
    /// disabled at capture time).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty()
    }

    /// This autopsy as one JSON object:
    /// `{"events":[{"ts_us":…,"ph":"B","tid":…,"name":…,"value":…},…],"counters":{…}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"ts_us\":{:.3},\"ph\":\"{}\",\"tid\":{},\"name\":",
                e.ts.as_nanos() as f64 / 1000.0,
                e.kind.phase(),
                e.tid
            );
            json::escape_into(&mut s, &e.name);
            let _ = write!(s, ",\"value\":{}}}", e.value);
        }
        s.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::escape_into(&mut s, name);
            let _ = write!(s, ":{value}");
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.instant("x", 1);
        t.counter("c", 2);
        {
            let _s = t.span("outer");
        }
        t.set_thread_label("nope");
        assert!(t.tail_current_thread(10).is_empty());
        assert!(t.tail(10).is_empty());
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.threads.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn events_record_in_order_with_monotone_timestamps() {
        let t = Tracer::with_capacity(64);
        {
            let _outer = t.span("translate");
            t.instant("restart", 7);
            let _inner = t.span("solve");
            t.counter("conflicts", 2048);
        }
        let snap = t.snapshot();
        let shape: Vec<(TraceEventKind, &str, u64)> = snap
            .events
            .iter()
            .map(|e| (e.kind, e.name.as_str(), e.value))
            .collect();
        assert_eq!(
            shape,
            vec![
                (TraceEventKind::SpanBegin, "translate", 0),
                (TraceEventKind::Instant, "restart", 7),
                (TraceEventKind::SpanBegin, "solve", 0),
                (TraceEventKind::Counter, "conflicts", 2048),
                (TraceEventKind::SpanEnd, "solve", 0),
                (TraceEventKind::SpanEnd, "translate", 0),
            ]
        );
        for w in snap.events.windows(2) {
            assert!(w[0].ts <= w[1].ts, "timestamps must be monotone per thread");
        }
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let t = Tracer::with_capacity(16);
        for i in 0..100u64 {
            t.instant("tick", i);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 16);
        assert_eq!(snap.dropped, 84);
        let values: Vec<u64> = snap.events.iter().map(|e| e.value).collect();
        assert_eq!(values, (84..100).collect::<Vec<u64>>());
        // The tail trims from the oldest side.
        let tail = t.tail_current_thread(4);
        let values: Vec<u64> = tail.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![96, 97, 98, 99]);
    }

    #[test]
    fn identical_runs_trace_identically_modulo_timestamps() {
        let run = |t: &Tracer| {
            let _outer = t.span("query");
            for i in 0..5u64 {
                t.instant("step", i);
            }
            t.counter("total", 5);
        };
        let (a, b) = (Tracer::with_capacity(64), Tracer::with_capacity(64));
        run(&a);
        run(&b);
        let strip = |t: &Tracer| {
            t.snapshot()
                .events
                .into_iter()
                .map(|e| (e.tid, e.seq, e.kind, e.name, e.value))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn threads_get_their_own_rings_and_labels() {
        let t = Tracer::with_capacity(64);
        t.set_thread_label("main");
        t.instant("here", 0);
        let t2 = t.clone();
        std::thread::spawn(move || {
            t2.set_thread_label("worker-0");
            t2.instant("there", 1);
        })
        .join()
        .unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.threads.len(), 2);
        let labels: Vec<&str> = snap.threads.iter().map(|(_, l)| l.as_str()).collect();
        assert!(labels.contains(&"main") && labels.contains(&"worker-0"));
        let tids: std::collections::BTreeSet<u32> = snap.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "each thread records on its own ring");
        // The cross-thread tail sees both events.
        let tail = t.tail(10);
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_mix() {
        let a = Tracer::with_capacity(16);
        let b = Tracer::with_capacity(16);
        a.instant("a", 1);
        b.instant("b", 2);
        assert_eq!(a.snapshot().events.len(), 1);
        assert_eq!(a.snapshot().events[0].name, "a");
        assert_eq!(b.snapshot().events[0].name, "b");
    }

    #[test]
    fn chrome_export_shape() {
        let t = Tracer::with_capacity(16);
        t.set_thread_label("main");
        {
            let _s = t.span("solve");
            t.instant("restart", 3);
            t.counter("conflicts", 10);
        }
        let json = t.snapshot().to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"ph\":\"B\",\"pid\":1,\"tid\":"));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":10}"));
        // Every line except the brackets is one JSON object.
        for line in json.lines() {
            if line == "[" || line == "]" {
                continue;
            }
            let line = line.strip_suffix(',').unwrap_or(line);
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "line {line:?}"
            );
        }
    }

    #[test]
    fn autopsy_packages_events_and_counters() {
        let t = Tracer::with_capacity(16);
        let reg = crate::Registry::new();
        reg.add("harness.queries", 1);
        {
            let _s = t.span("query:MP");
        }
        let autopsy = Autopsy::capture(t.tail_current_thread(8), &reg);
        assert!(!autopsy.is_empty());
        let json = autopsy.to_json();
        assert!(json.starts_with("{\"events\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"name\":\"query:MP\""));
        assert!(json.contains("\"counters\":{\"harness.queries\":1}"));
        let empty = Autopsy::capture(Vec::new(), &crate::Registry::disabled());
        assert!(empty.is_empty());
        assert_eq!(empty.to_json(), "{\"events\":[],\"counters\":{}}");
    }

    #[test]
    fn interned_ids_emit_without_relocking() {
        let t = Tracer::with_capacity(16);
        let id = t.intern("sat.restart");
        assert_eq!(t.intern("sat.restart"), id, "interning is idempotent");
        t.instant_id(id, 42);
        let snap = t.snapshot();
        assert_eq!(snap.events[0].name, "sat.restart");
        assert_eq!(snap.events[0].value, 42);
        // Disabled tracers hand out a sentinel that records nothing.
        let off = Tracer::disabled();
        off.instant_id(off.intern("x"), 1);
        assert!(off.snapshot().events.is_empty());
    }

    #[test]
    fn concurrent_writers_and_reader_do_not_tear() {
        let t = Tracer::with_capacity(32);
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    t.instant("spin", w * 10_000 + i);
                }
            }));
        }
        // Read concurrently; torn slots are skipped, never corrupted.
        for _ in 0..50 {
            for e in t.tail(64) {
                assert_eq!(e.name, "spin");
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        // Post-join the snapshot is quiescent: all rings full and valid.
        assert_eq!(snap.events.len(), 4 * 32);
        assert!(snap.dropped > 0);
    }
}
