//! Dependency-free observability for the PTX memory-model workspace.
//!
//! Every layer of the stack — the CDCL SAT solver, the relational
//! translator, the bounded model finder, the litmus harness — counts
//! things (propagations, conflicts, encoded gates, matrix cells) and
//! spends wall time in well-defined phases (translate, encode, solve).
//! This crate gives those layers one vocabulary:
//!
//! * [`Counter`] — a monotone atomic `u64`, cheap enough to bump on the
//!   hottest solver paths;
//! * [`Histogram`] — a monotone power-of-two bucket histogram for size
//!   distributions (learnt-clause lengths, cone sizes);
//! * [`Span`] — an RAII wall-clock timer that records its duration on
//!   drop, nesting dotted paths per thread (`translate.encode`);
//! * [`Registry`] — a thread-safe, cloneable home for all of the above.
//!
//! A disabled registry (the default) is free of charge: handles carry
//! no allocation, increments are a single branch, and spans never read
//! the clock. Enabled registries can be [merged](Registry::merge_from)
//! — counters add, timings add, histograms add bucket-wise — which is
//! how the worker-pool harness folds per-query registries into a run
//! total, and [snapshotted](Registry::snapshot) for rendering as a
//! human-readable table or as JSON Lines (one event object per line,
//! see [`Snapshot::to_jsonl`] for the schema `scripts/bench_diff.sh`
//! consumes).
//!
//! Counters and histogram contents are deterministic for fixed-seed
//! single-job runs; wall-clock *durations* are not, which is why the
//! JSONL schema keeps them under a separate `"timing"` kind that diff
//! tooling excludes by default.

#![warn(missing_docs)]

pub mod json;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
const HIST_BUCKETS: usize = 65;

/// A monotone atomic counter handle.
///
/// Obtained from [`Registry::counter`]; cloning shares the underlying
/// cell. Handles from a disabled registry are inert: [`Counter::add`]
/// is a branch and nothing else.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter (no-op when disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the power-of-two bucket for `v`: bucket 0 holds zeros,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A monotone histogram handle with power-of-two buckets.
///
/// Obtained from [`Registry::histogram`]; cloning shares the underlying
/// cells. Observations only ever increase bucket counts, so merged and
/// repeated snapshots are monotone.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// Records one observation of `v` (no-op when disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TimingCell {
    count: u64,
    total: Duration,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCell>>>,
    timings: Mutex<BTreeMap<String, TimingCell>>,
    notes: Mutex<BTreeMap<String, String>>,
}

thread_local! {
    /// Stack of open span paths for the current thread, innermost last.
    /// Spans nest per thread: a span opened while another is active on
    /// the same thread records under `outer.inner`.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A thread-safe registry of named counters, histograms, timings, and
/// free-form notes.
///
/// `Registry` is a cheap handle (an `Option<Arc>`): clones share state,
/// and the [`Registry::disabled`] default carries nothing at all.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// A fresh, enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// The inert registry: every operation is a no-op, every handle it
    /// hands out is free. This is the `Default`.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// True when this registry records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh registry with the same enablement as `self` — the
    /// harness uses this to give each query its own registry exactly
    /// when the caller asked for stats.
    pub fn child(&self) -> Registry {
        if self.enabled() {
            Registry::new()
        } else {
            Registry::disabled()
        }
    }

    /// The counter registered under `name`, created at zero on first
    /// use. Disabled registries return an inert handle without locking.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter(None),
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(Arc::clone(cell)))
            }
        }
    }

    /// Adds `n` to the counter `name` (shorthand for one-shot bumps;
    /// hot paths should hold a [`Counter`] handle instead).
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled() {
            self.counter(name).add(n);
        }
    }

    /// The histogram registered under `name`, created empty on first
    /// use. Disabled registries return an inert handle without locking.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram(None),
            Some(inner) => {
                let mut map = inner.histograms.lock().unwrap();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistCell::new()));
                Histogram(Some(Arc::clone(cell)))
            }
        }
    }

    /// Records one observation of `v` in the histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        if self.enabled() {
            self.histogram(name).observe(v);
        }
    }

    /// Adds one completed interval of length `d` to the timing `name`.
    pub fn record_duration(&self, name: &str, d: Duration) {
        if let Some(inner) = &self.inner {
            let mut map = inner.timings.lock().unwrap();
            let cell = map.entry(name.to_string()).or_default();
            cell.count += 1;
            cell.total += d;
        }
    }

    /// Sets the free-form note `name` to `value` (last write wins).
    /// Notes carry run metadata — benchmark names, seeds — and are
    /// ignored by diff tooling.
    pub fn note(&self, name: &str, value: &str) {
        if let Some(inner) = &self.inner {
            inner
                .notes
                .lock()
                .unwrap()
                .insert(name.to_string(), value.to_string());
        }
    }

    /// Opens an RAII timing span named `name`. The span records its
    /// wall-clock duration under its dotted path when dropped; spans
    /// opened while another span is active *on the same thread* nest
    /// under it (`outer` then `outer.inner`). Spans are per-thread and
    /// LIFO: drop them in reverse open order on the thread that opened
    /// them. Disabled registries never read the clock.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(_) => {
                let path = SPAN_STACK.with(|stack| {
                    let mut stack = stack.borrow_mut();
                    let path = match stack.last() {
                        Some(parent) => format!("{parent}.{name}"),
                        None => name.to_string(),
                    };
                    stack.push(path.clone());
                    path
                });
                Span {
                    active: Some(SpanActive {
                        registry: self.clone(),
                        path,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Folds another registry's contents into this one: counters and
    /// timings add, histograms add bucket-wise, notes overwrite. Both
    /// registries stay usable; merging into a disabled registry is a
    /// no-op.
    pub fn merge_from(&self, other: &Registry) {
        self.merge_prefixed(other, "");
    }

    /// Like [`Registry::merge_from`], but every name from `other` gains
    /// `prefix` — how drivers file per-query registries under
    /// `test.<name>.` while also merging an unprefixed run total.
    pub fn merge_prefixed(&self, other: &Registry, prefix: &str) {
        if !self.enabled() {
            return;
        }
        let snap = other.snapshot();
        for (name, v) in &snap.counters {
            self.counter(&format!("{prefix}{name}")).add(*v);
        }
        for (name, t) in &snap.timings {
            if let Some(inner) = &self.inner {
                let mut map = inner.timings.lock().unwrap();
                let cell = map.entry(format!("{prefix}{name}")).or_default();
                cell.count += t.count;
                cell.total += t.total;
            }
        }
        for (name, h) in &snap.histograms {
            if let Some(cell) = &self.histogram(&format!("{prefix}{name}")).0 {
                for &(exp, n) in &h.buckets {
                    cell.buckets[exp as usize].fetch_add(n, Ordering::Relaxed);
                }
                cell.count.fetch_add(h.count, Ordering::Relaxed);
                cell.sum.fetch_add(h.sum, Ordering::Relaxed);
            }
        }
        for (name, value) in &snap.notes {
            self.note(&format!("{prefix}{name}"), value);
        }
    }

    /// A point-in-time copy of everything recorded so far. Disabled
    /// registries snapshot empty.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(inner) = &self.inner {
            for (name, cell) in inner.counters.lock().unwrap().iter() {
                snap.counters
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, cell) in inner.timings.lock().unwrap().iter() {
                snap.timings.insert(
                    name.clone(),
                    TimingSnap {
                        count: cell.count,
                        total: cell.total,
                    },
                );
            }
            for (name, cell) in inner.histograms.lock().unwrap().iter() {
                let mut buckets = Vec::new();
                for (exp, b) in cell.buckets.iter().enumerate() {
                    let n = b.load(Ordering::Relaxed);
                    if n > 0 {
                        buckets.push((exp as u32, n));
                    }
                }
                snap.histograms.insert(
                    name.clone(),
                    HistSnap {
                        count: cell.count.load(Ordering::Relaxed),
                        sum: cell.sum.load(Ordering::Relaxed),
                        buckets,
                    },
                );
            }
            for (name, value) in inner.notes.lock().unwrap().iter() {
                snap.notes.insert(name.clone(), value.clone());
            }
        }
        snap
    }

    /// Shorthand for `self.snapshot().to_jsonl()`.
    pub fn to_jsonl(&self) -> String {
        self.snapshot().to_jsonl()
    }

    /// Shorthand for `self.snapshot().render_table()`.
    pub fn render_table(&self) -> String {
        self.snapshot().render_table()
    }
}

struct SpanActive {
    registry: Registry,
    path: String,
    start: Instant,
}

/// An open timing interval; see [`Registry::span`]. Records its
/// duration into the registry when dropped.
#[must_use = "a span records nothing unless it lives across the timed work"]
pub struct Span {
    active: Option<SpanActive>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.start.elapsed();
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if stack.last() == Some(&active.path) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|p| p == &active.path) {
                    // Out-of-order drop: remove this span's own entry,
                    // leaving siblings alone.
                    stack.remove(pos);
                }
            });
            active.registry.record_duration(&active.path, elapsed);
        }
    }
}

/// A snapshotted timing: how many intervals completed and their total
/// wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingSnap {
    /// Completed intervals.
    pub count: u64,
    /// Sum of interval durations.
    pub total: Duration,
}

/// A snapshotted histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnap {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `(exponent, observations)`: exponent 0 is
    /// the zero bucket, exponent `i >= 1` covers `[2^(i-1), 2^i)`.
    pub buckets: Vec<(u32, u64)>,
}

/// A point-in-time copy of a [`Registry`], ready for rendering,
/// diffing, or assertions. All maps iterate in name order, so exports
/// are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Timings by name.
    pub timings: BTreeMap<String, TimingSnap>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistSnap>,
    /// Notes by name.
    pub notes: BTreeMap<String, String>,
}

impl Snapshot {
    /// The counter `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total seconds recorded under the timing `name`, or 0 when
    /// absent.
    pub fn timing_secs(&self, name: &str) -> f64 {
        self.timings
            .get(name)
            .map_or(0.0, |t| t.total.as_secs_f64())
    }

    /// A copy keeping only entries whose name satisfies `keep`.
    pub fn filtered(&self, mut keep: impl FnMut(&str) -> bool) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            timings: self
                .timings
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            notes: self
                .notes
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// The stats export schema: one JSON object per line, in a fixed
    /// key order with no extraneous whitespace so line-oriented tools
    /// (`scripts/bench_diff.sh`) can parse it with `sed`.
    ///
    /// ```text
    /// {"kind":"note","name":"benchmark","value":"fig17"}
    /// {"kind":"counter","name":"solver.conflicts","value":42}
    /// {"kind":"timing","name":"time.solve","count":3,"total_secs":0.001234}
    /// {"kind":"histogram","name":"learnt.len","count":5,"sum":17,"buckets":[[2,3],[3,2]]}
    /// ```
    ///
    /// `counter` values (and histogram contents) are deterministic for
    /// fixed-seed single-job runs; `timing` entries are wall-clock and
    /// must be excluded from exact comparisons.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.notes {
            out.push_str("{\"kind\":\"note\",\"name\":");
            json::escape_into(&mut out, name);
            out.push_str(",\"value\":");
            json::escape_into(&mut out, value);
            out.push_str("}\n");
        }
        for (name, value) in &self.counters {
            out.push_str("{\"kind\":\"counter\",\"name\":");
            json::escape_into(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
            out.push('\n');
        }
        for (name, t) in &self.timings {
            out.push_str("{\"kind\":\"timing\",\"name\":");
            json::escape_into(&mut out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"total_secs\":{:.6}}}",
                t.count,
                t.total.as_secs_f64()
            );
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"kind\":\"histogram\",\"name\":");
            json::escape_into(&mut out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            );
            for (i, (exp, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{exp},{n}]");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// A human-readable rendering: one aligned section per kind, names
    /// alphabetical. Empty sections are omitted; an empty snapshot
    /// renders as the empty string.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.notes.is_empty() {
            let w = self.notes.keys().map(|k| k.len()).max().unwrap_or(0);
            out.push_str("notes\n");
            for (name, value) in &self.notes {
                let _ = writeln!(out, "  {name:<w$}  {value}");
            }
        }
        if !self.counters.is_empty() {
            let w = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            let vw = self
                .counters
                .values()
                .map(|v| v.to_string().len())
                .max()
                .unwrap_or(0);
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<w$}  {value:>vw$}");
            }
        }
        if !self.timings.is_empty() {
            let w = self.timings.keys().map(|k| k.len()).max().unwrap_or(0);
            out.push_str("timings\n");
            for (name, t) in &self.timings {
                let _ = writeln!(
                    out,
                    "  {name:<w$}  {:>6} x  {:>12.6}s",
                    t.count,
                    t.total.as_secs_f64()
                );
            }
        }
        if !self.histograms.is_empty() {
            let w = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            out.push_str("histograms\n");
            for (name, h) in &self.histograms {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                let _ = write!(
                    out,
                    "  {name:<w$}  n={} sum={} mean={mean:.1} buckets=",
                    h.count, h.sum
                );
                for (i, (exp, n)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let lo: u128 = if *exp == 0 { 0 } else { 1u128 << (exp - 1) };
                    let _ = write!(out, "{lo}+:{n}");
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.enabled());
        let c = reg.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        reg.add("x", 5);
        reg.observe("h", 3);
        reg.record_duration("t", Duration::from_millis(1));
        reg.note("n", "v");
        {
            let _s = reg.span("outer");
        }
        let snap = reg.snapshot();
        assert_eq!(snap, Snapshot::default());
        assert_eq!(reg.to_jsonl(), "");
        assert_eq!(reg.render_table(), "");
    }

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("solver.conflicts");
        let b = reg.counter("solver.conflicts");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter("solver.conflicts"), 4);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let reg = Registry::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            reg.observe("sizes", v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms["sizes"];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]);
    }

    #[test]
    fn spans_record_nested_paths() {
        let reg = Registry::new();
        {
            let _outer = reg.span("translate");
            {
                let _inner = reg.span("encode");
            }
        }
        let snap = reg.snapshot();
        assert_eq!(snap.timings["translate"].count, 1);
        assert_eq!(snap.timings["translate.encode"].count, 1);
        // The stack unwound: a new span is top-level again.
        {
            let _again = reg.span("solve");
        }
        assert_eq!(reg.snapshot().timings["solve"].count, 1);
    }

    #[test]
    fn merge_prefixed_files_under_prefix() {
        let per_query = Registry::new();
        per_query.add("solver.conflicts", 7);
        per_query.observe("learnt.len", 4);
        per_query.record_duration("time.solve", Duration::from_millis(2));
        per_query.note("verdict", "Unsat");

        let total = Registry::new();
        total.merge_from(&per_query);
        total.merge_prefixed(&per_query, "test.MP.");

        let snap = total.snapshot();
        assert_eq!(snap.counter("solver.conflicts"), 7);
        assert_eq!(snap.counter("test.MP.solver.conflicts"), 7);
        assert_eq!(snap.histograms["test.MP.learnt.len"].sum, 4);
        assert_eq!(snap.timings["test.MP.time.solve"].count, 1);
        assert_eq!(snap.notes["test.MP.verdict"], "Unsat");

        // Merging into a disabled registry is a no-op.
        let off = Registry::disabled();
        off.merge_from(&per_query);
        assert_eq!(off.snapshot(), Snapshot::default());
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let reg = Registry::new();
        reg.note("benchmark", "demo");
        reg.add("a.count", 2);
        reg.record_duration("t", Duration::from_micros(1500));
        reg.observe("h", 3);
        let jsonl = reg.to_jsonl();
        assert_eq!(
            jsonl,
            "{\"kind\":\"note\",\"name\":\"benchmark\",\"value\":\"demo\"}\n\
             {\"kind\":\"counter\",\"name\":\"a.count\",\"value\":2}\n\
             {\"kind\":\"timing\",\"name\":\"t\",\"count\":1,\"total_secs\":0.001500}\n\
             {\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":3,\"buckets\":[[2,1]]}\n"
        );
    }

    #[test]
    fn filtered_keeps_matching_names() {
        let reg = Registry::new();
        reg.add("total.x", 1);
        reg.add("test.MP.x", 2);
        let snap = reg.snapshot().filtered(|n| !n.starts_with("test."));
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counter("total.x"), 1);
    }

    #[test]
    fn child_mirrors_enablement() {
        assert!(Registry::new().child().enabled());
        assert!(!Registry::disabled().child().enabled());
    }
}
