//! Dependency-free observability for the PTX memory-model workspace.
//!
//! Every layer of the stack — the CDCL SAT solver, the relational
//! translator, the bounded model finder, the litmus harness — counts
//! things (propagations, conflicts, encoded gates, matrix cells) and
//! spends wall time in well-defined phases (translate, encode, solve).
//! This crate gives those layers one vocabulary:
//!
//! * [`Counter`] — a monotone atomic `u64`, cheap enough to bump on the
//!   hottest solver paths;
//! * [`Gauge`] — an atomic last-value `u64` for sampled levels (queue
//!   depth, warm sessions) that rise and fall rather than accumulate;
//! * [`Histogram`] — a monotone power-of-two bucket histogram for size
//!   distributions (learnt-clause lengths, cone sizes);
//! * [`Span`] — an RAII wall-clock timer that records its duration on
//!   drop, nesting dotted paths per thread (`translate.encode`);
//! * [`Registry`] — a thread-safe, cloneable home for all of the above.
//!
//! A disabled registry (the default) is free of charge: handles carry
//! no allocation, increments are a single branch, and spans never read
//! the clock. Enabled registries can be [merged](Registry::merge_from)
//! — counters add, timings add, histograms add bucket-wise — which is
//! how the worker-pool harness folds per-query registries into a run
//! total, and [snapshotted](Registry::snapshot) for rendering as a
//! human-readable table or as JSON Lines (one event object per line,
//! see [`Snapshot::to_jsonl`] for the schema `scripts/bench_diff.sh`
//! consumes).
//!
//! Counters and histogram contents are deterministic for fixed-seed
//! single-job runs; wall-clock *durations* are not, which is why the
//! JSONL schema keeps them under a separate `"timing"` kind that diff
//! tooling excludes by default.

#![warn(missing_docs)]

pub mod json;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
const HIST_BUCKETS: usize = 65;

/// A monotone atomic counter handle.
///
/// Obtained from [`Registry::counter`]; cloning shares the underlying
/// cell. Handles from a disabled registry are inert: [`Counter::add`]
/// is a branch and nothing else.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter (no-op when disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// An atomic last-value gauge handle.
///
/// Obtained from [`Registry::gauge`]; cloning shares the underlying
/// cell. Unlike a [`Counter`], a gauge is *sampled*: [`Gauge::set`]
/// overwrites the previous value, so snapshots report the most recent
/// level rather than an accumulated total. Handles from a disabled
/// registry are inert.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge to `v` (no-op when disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// The last value set (0 when disabled or never set).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the power-of-two bucket for `v`: bucket 0 holds zeros,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A monotone histogram handle with power-of-two buckets.
///
/// Obtained from [`Registry::histogram`]; cloning shares the underlying
/// cells. Observations only ever increase bucket counts, so merged and
/// repeated snapshots are monotone.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// Records one observation of `v` (no-op when disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TimingCell {
    count: u64,
    total: Duration,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCell>>>,
    timings: Mutex<BTreeMap<String, TimingCell>>,
    notes: Mutex<BTreeMap<String, String>>,
}

thread_local! {
    /// Stack of open span paths for the current thread, innermost last.
    /// Spans nest per thread: a span opened while another is active on
    /// the same thread records under `outer.inner`.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A thread-safe registry of named counters, histograms, timings, and
/// free-form notes.
///
/// `Registry` is a cheap handle (an `Option<Arc>`): clones share state,
/// and the [`Registry::disabled`] default carries nothing at all.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// A fresh, enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// The inert registry: every operation is a no-op, every handle it
    /// hands out is free. This is the `Default`.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// True when this registry records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh registry with the same enablement as `self` — the
    /// harness uses this to give each query its own registry exactly
    /// when the caller asked for stats.
    pub fn child(&self) -> Registry {
        if self.enabled() {
            Registry::new()
        } else {
            Registry::disabled()
        }
    }

    /// The counter registered under `name`, created at zero on first
    /// use. Disabled registries return an inert handle without locking.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter(None),
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(Arc::clone(cell)))
            }
        }
    }

    /// Adds `n` to the counter `name` (shorthand for one-shot bumps;
    /// hot paths should hold a [`Counter`] handle instead).
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled() {
            self.counter(name).add(n);
        }
    }

    /// The gauge registered under `name`, created at zero on first use.
    /// Disabled registries return an inert handle without locking.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge(None),
            Some(inner) => {
                let mut map = inner.gauges.lock().unwrap();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Gauge(Some(Arc::clone(cell)))
            }
        }
    }

    /// Sets the gauge `name` to `v` (shorthand for one-shot samples;
    /// periodic samplers should hold a [`Gauge`] handle instead).
    pub fn set_gauge(&self, name: &str, v: u64) {
        if self.enabled() {
            self.gauge(name).set(v);
        }
    }

    /// The histogram registered under `name`, created empty on first
    /// use. Disabled registries return an inert handle without locking.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram(None),
            Some(inner) => {
                let mut map = inner.histograms.lock().unwrap();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistCell::new()));
                Histogram(Some(Arc::clone(cell)))
            }
        }
    }

    /// Records one observation of `v` in the histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        if self.enabled() {
            self.histogram(name).observe(v);
        }
    }

    /// Adds one completed interval of length `d` to the timing `name`.
    pub fn record_duration(&self, name: &str, d: Duration) {
        if let Some(inner) = &self.inner {
            let mut map = inner.timings.lock().unwrap();
            let cell = map.entry(name.to_string()).or_default();
            cell.count += 1;
            cell.total += d;
        }
    }

    /// Sets the free-form note `name` to `value` (last write wins).
    /// Notes carry run metadata — benchmark names, seeds — and are
    /// ignored by diff tooling.
    pub fn note(&self, name: &str, value: &str) {
        if let Some(inner) = &self.inner {
            inner
                .notes
                .lock()
                .unwrap()
                .insert(name.to_string(), value.to_string());
        }
    }

    /// Opens an RAII timing span named `name`. The span records its
    /// wall-clock duration under its dotted path when dropped; spans
    /// opened while another span is active *on the same thread* nest
    /// under it (`outer` then `outer.inner`). Spans are per-thread and
    /// LIFO: drop them in reverse open order on the thread that opened
    /// them. Disabled registries never read the clock.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(_) => {
                let path = SPAN_STACK.with(|stack| {
                    let mut stack = stack.borrow_mut();
                    let path = match stack.last() {
                        Some(parent) => format!("{parent}.{name}"),
                        None => name.to_string(),
                    };
                    stack.push(path.clone());
                    path
                });
                Span {
                    active: Some(SpanActive {
                        registry: self.clone(),
                        path,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Folds another registry's contents into this one: counters and
    /// timings add, histograms add bucket-wise, gauges and notes
    /// overwrite (last value wins). Both registries stay usable;
    /// merging into a disabled registry is a no-op.
    pub fn merge_from(&self, other: &Registry) {
        self.merge_prefixed(other, "");
    }

    /// Like [`Registry::merge_from`], but every name from `other` gains
    /// `prefix` — how drivers file per-query registries under
    /// `test.<name>.` while also merging an unprefixed run total.
    pub fn merge_prefixed(&self, other: &Registry, prefix: &str) {
        if !self.enabled() {
            return;
        }
        let snap = other.snapshot();
        for (name, v) in &snap.counters {
            self.counter(&format!("{prefix}{name}")).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(&format!("{prefix}{name}")).set(*v);
        }
        for (name, t) in &snap.timings {
            if let Some(inner) = &self.inner {
                let mut map = inner.timings.lock().unwrap();
                let cell = map.entry(format!("{prefix}{name}")).or_default();
                cell.count += t.count;
                cell.total += t.total;
            }
        }
        for (name, h) in &snap.histograms {
            if let Some(cell) = &self.histogram(&format!("{prefix}{name}")).0 {
                for &(exp, n) in &h.buckets {
                    cell.buckets[exp as usize].fetch_add(n, Ordering::Relaxed);
                }
                cell.count.fetch_add(h.count, Ordering::Relaxed);
                cell.sum.fetch_add(h.sum, Ordering::Relaxed);
            }
        }
        for (name, value) in &snap.notes {
            self.note(&format!("{prefix}{name}"), value);
        }
    }

    /// A point-in-time copy of everything recorded so far. Disabled
    /// registries snapshot empty.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(inner) = &self.inner {
            for (name, cell) in inner.counters.lock().unwrap().iter() {
                snap.counters
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, cell) in inner.gauges.lock().unwrap().iter() {
                snap.gauges
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, cell) in inner.timings.lock().unwrap().iter() {
                snap.timings.insert(
                    name.clone(),
                    TimingSnap {
                        count: cell.count,
                        total: cell.total,
                    },
                );
            }
            for (name, cell) in inner.histograms.lock().unwrap().iter() {
                let mut buckets = Vec::new();
                for (exp, b) in cell.buckets.iter().enumerate() {
                    let n = b.load(Ordering::Relaxed);
                    if n > 0 {
                        buckets.push((exp as u32, n));
                    }
                }
                snap.histograms.insert(
                    name.clone(),
                    HistSnap {
                        count: cell.count.load(Ordering::Relaxed),
                        sum: cell.sum.load(Ordering::Relaxed),
                        buckets,
                    },
                );
            }
            for (name, value) in inner.notes.lock().unwrap().iter() {
                snap.notes.insert(name.clone(), value.clone());
            }
        }
        snap
    }

    /// Shorthand for `self.snapshot().to_jsonl()`.
    pub fn to_jsonl(&self) -> String {
        self.snapshot().to_jsonl()
    }

    /// Shorthand for `self.snapshot().render_table()`.
    pub fn render_table(&self) -> String {
        self.snapshot().render_table()
    }
}

struct SpanActive {
    registry: Registry,
    path: String,
    start: Instant,
}

/// An open timing interval; see [`Registry::span`]. Records its
/// duration into the registry when dropped.
#[must_use = "a span records nothing unless it lives across the timed work"]
pub struct Span {
    active: Option<SpanActive>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.start.elapsed();
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if stack.last() == Some(&active.path) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|p| p == &active.path) {
                    // Out-of-order drop: remove this span's own entry,
                    // leaving siblings alone.
                    stack.remove(pos);
                }
            });
            active.registry.record_duration(&active.path, elapsed);
        }
    }
}

/// A snapshotted timing: how many intervals completed and their total
/// wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingSnap {
    /// Completed intervals.
    pub count: u64,
    /// Sum of interval durations.
    pub total: Duration,
}

/// A snapshotted histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnap {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `(exponent, observations)`: exponent 0 is
    /// the zero bucket, exponent `i >= 1` covers `[2^(i-1), 2^i)`.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnap {
    /// The `q`-quantile (`0.0 < q <= 1.0`) as the inclusive upper edge
    /// of the bucket holding the rank-`ceil(q * count)` observation:
    /// 0 for the zero bucket, `2^i - 1` for exponent `i`. Resolution is
    /// therefore one power-of-two bucket — any consumer deriving the
    /// quantile from the same bucket vector gets the same answer, which
    /// is how `ptxtop` and the server's own dumps stay in agreement.
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(exp, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper_edge(exp);
            }
        }
        u64::MAX
    }

    /// The median bucket edge; see [`HistSnap::quantile`].
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile bucket edge; see [`HistSnap::quantile`].
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile bucket edge; see [`HistSnap::quantile`].
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// `d` as saturating whole nanoseconds. Durations beyond ~584 years
/// clamp to `u64::MAX`; JSON consumers additionally round above 2^53,
/// far past any wall time this workspace records.
fn total_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Inclusive upper edge of the bucket with exponent `exp`: 0 for the
/// zero bucket, `2^exp - 1` for exponent `exp >= 1` (saturating at
/// `u64::MAX` for the top bucket).
pub fn bucket_upper_edge(exp: u32) -> u64 {
    if exp == 0 {
        0
    } else if exp >= 64 {
        u64::MAX
    } else {
        (1u64 << exp) - 1
    }
}

/// A point-in-time copy of a [`Registry`], ready for rendering,
/// diffing, or assertions. All maps iterate in name order, so exports
/// are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (last value sampled).
    pub gauges: BTreeMap<String, u64>,
    /// Timings by name.
    pub timings: BTreeMap<String, TimingSnap>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistSnap>,
    /// Notes by name.
    pub notes: BTreeMap<String, String>,
}

impl Snapshot {
    /// The counter `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, or 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Total seconds recorded under the timing `name`, or 0 when
    /// absent.
    pub fn timing_secs(&self, name: &str) -> f64 {
        self.timings
            .get(name)
            .map_or(0.0, |t| t.total.as_secs_f64())
    }

    /// A copy keeping only entries whose name satisfies `keep`.
    pub fn filtered(&self, mut keep: impl FnMut(&str) -> bool) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            timings: self
                .timings
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            notes: self
                .notes
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// The change from `prev` (an earlier snapshot of the same
    /// registry) to `self`: counters, timings, and histogram buckets
    /// subtract (saturating, dropping entries with no change); gauges
    /// and notes carry `self`'s value only where it differs from
    /// `prev` (last-value kinds have no meaningful difference).
    ///
    /// Deltas are exactly additive over the monotone kinds: for
    /// snapshots `s0, s1, ..., sn` of one registry,
    /// `s0 + Σ sᵢ.delta(sᵢ₋₁)` (via [`Snapshot::add_assign`]) equals
    /// `sn` on counters, timings, and histograms. The `watch` op of
    /// `ptxd` streams exactly these objects.
    pub fn delta(&self, prev: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(prev.counter(name));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        for (name, &v) in &self.gauges {
            if prev.gauges.get(name) != Some(&v) {
                out.gauges.insert(name.clone(), v);
            }
        }
        for (name, t) in &self.timings {
            let p = prev.timings.get(name).copied().unwrap_or_default();
            let d = TimingSnap {
                count: t.count.saturating_sub(p.count),
                total: t.total.saturating_sub(p.total),
            };
            if d.count > 0 || !d.total.is_zero() {
                out.timings.insert(name.clone(), d);
            }
        }
        for (name, h) in &self.histograms {
            let empty = HistSnap::default();
            let p = prev.histograms.get(name).unwrap_or(&empty);
            let mut buckets = Vec::new();
            for &(exp, n) in &h.buckets {
                let pn = p
                    .buckets
                    .iter()
                    .find(|(pe, _)| *pe == exp)
                    .map_or(0, |&(_, pn)| pn);
                let d = n.saturating_sub(pn);
                if d > 0 {
                    buckets.push((exp, d));
                }
            }
            let d = HistSnap {
                count: h.count.saturating_sub(p.count),
                sum: h.sum.saturating_sub(p.sum),
                buckets,
            };
            if d.count > 0 {
                out.histograms.insert(name.clone(), d);
            }
        }
        for (name, value) in &self.notes {
            if prev.notes.get(name) != Some(value) {
                out.notes.insert(name.clone(), value.clone());
            }
        }
        out
    }

    /// Folds `other` into `self` with the same semantics as
    /// [`Registry::merge_from`]: counters and timings add, histograms
    /// add bucket-wise, gauges and notes overwrite. The inverse of
    /// [`Snapshot::delta`] for the monotone kinds.
    pub fn add_assign(&mut self, other: &Snapshot) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
        for (name, t) in &other.timings {
            let cell = self.timings.entry(name.clone()).or_default();
            cell.count += t.count;
            cell.total += t.total;
        }
        for (name, h) in &other.histograms {
            let cell = self.histograms.entry(name.clone()).or_default();
            cell.count += h.count;
            cell.sum += h.sum;
            for &(exp, n) in &h.buckets {
                match cell.buckets.iter_mut().find(|(e, _)| *e == exp) {
                    Some((_, existing)) => *existing += n,
                    None => cell.buckets.push((exp, n)),
                }
            }
            cell.buckets.sort_unstable_by_key(|&(e, _)| e);
        }
        for (name, value) in &other.notes {
            self.notes.insert(name.clone(), value.clone());
        }
    }

    /// The snapshot as one deterministic JSON object — the wire shape
    /// of `ptxd`'s `stats` v2 reply and `watch` deltas. Schema-stable:
    /// all five keys always present, alphabetical, maps in name order,
    /// durations as exact integer nanoseconds (so deltas stay
    /// additive):
    ///
    /// ```text
    /// {"counters":{"a":1},
    ///  "gauges":{"g":3},
    ///  "histograms":{"h":[count,sum,[[exp,n],...]]},
    ///  "notes":{"k":"v"},
    ///  "timings":{"t":[count,total_ns]}}
    /// ```
    pub fn to_json_object(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            let _ = write!(out, ":[{},{},[", h.count, h.sum);
            for (j, (exp, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{exp},{n}]");
            }
            out.push_str("]]");
        }
        out.push_str("},\"notes\":{");
        for (i, (name, value)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            out.push(':');
            json::escape_into(&mut out, value);
        }
        out.push_str("},\"timings\":{");
        for (i, (name, t)) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            let _ = write!(out, ":[{},{}]", t.count, total_ns(t.total));
        }
        out.push_str("}}");
        out
    }

    /// Parses the [`Snapshot::to_json_object`] shape back into a
    /// snapshot. Missing keys parse as empty maps; malformed entries
    /// reject the whole object.
    pub fn from_json(text: &str) -> Option<Snapshot> {
        Snapshot::from_json_value(&json::parse(text)?)
    }

    /// Like [`Snapshot::from_json`], for an already-parsed value —
    /// how `litmus::client` decodes the `snapshot`/`delta` fields of
    /// `stats` v2 and `watch` replies.
    pub fn from_json_value(v: &json::Value) -> Option<Snapshot> {
        let mut snap = Snapshot::default();
        if let Some(json::Value::Obj(entries)) = v.get("counters") {
            for (name, v) in entries {
                snap.counters.insert(name.clone(), v.as_u64()?);
            }
        }
        if let Some(json::Value::Obj(entries)) = v.get("gauges") {
            for (name, v) in entries {
                snap.gauges.insert(name.clone(), v.as_u64()?);
            }
        }
        if let Some(json::Value::Obj(entries)) = v.get("histograms") {
            for (name, v) in entries {
                let json::Value::Arr(parts) = v else {
                    return None;
                };
                let [count, sum, json::Value::Arr(bucket_vals)] = parts.as_slice() else {
                    return None;
                };
                let mut buckets = Vec::new();
                for b in bucket_vals {
                    let json::Value::Arr(pair) = b else {
                        return None;
                    };
                    let [exp, n] = pair.as_slice() else {
                        return None;
                    };
                    buckets.push((u32::try_from(exp.as_u64()?).ok()?, n.as_u64()?));
                }
                snap.histograms.insert(
                    name.clone(),
                    HistSnap {
                        count: count.as_u64()?,
                        sum: sum.as_u64()?,
                        buckets,
                    },
                );
            }
        }
        if let Some(json::Value::Obj(entries)) = v.get("notes") {
            for (name, v) in entries {
                let json::Value::Str(s) = v else {
                    return None;
                };
                snap.notes.insert(name.clone(), s.clone());
            }
        }
        if let Some(json::Value::Obj(entries)) = v.get("timings") {
            for (name, v) in entries {
                let json::Value::Arr(parts) = v else {
                    return None;
                };
                let [count, ns] = parts.as_slice() else {
                    return None;
                };
                snap.timings.insert(
                    name.clone(),
                    TimingSnap {
                        count: count.as_u64()?,
                        total: Duration::from_nanos(ns.as_u64()?),
                    },
                );
            }
        }
        Some(snap)
    }

    /// The stats export schema: one JSON object per line, in a fixed
    /// key order with no extraneous whitespace so line-oriented tools
    /// (`scripts/bench_diff.sh`) can parse it with `sed`.
    ///
    /// ```text
    /// {"kind":"note","name":"benchmark","value":"fig17"}
    /// {"kind":"counter","name":"solver.conflicts","value":42}
    /// {"kind":"gauge","name":"ptxd.gauge.queue_depth","value":3}
    /// {"kind":"timing","name":"time.solve","count":3,"total_secs":0.001234}
    /// {"kind":"histogram","name":"learnt.len","count":5,"sum":17,"buckets":[[2,3],[3,2]]}
    /// ```
    ///
    /// `gauge` lines are last-value samples (not monotone) and, like
    /// timings, are excluded from exact comparisons.
    ///
    /// `counter` values (and histogram contents) are deterministic for
    /// fixed-seed single-job runs; `timing` entries are wall-clock and
    /// must be excluded from exact comparisons.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.notes {
            out.push_str("{\"kind\":\"note\",\"name\":");
            json::escape_into(&mut out, name);
            out.push_str(",\"value\":");
            json::escape_into(&mut out, value);
            out.push_str("}\n");
        }
        for (name, value) in &self.counters {
            out.push_str("{\"kind\":\"counter\",\"name\":");
            json::escape_into(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"kind\":\"gauge\",\"name\":");
            json::escape_into(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
            out.push('\n');
        }
        for (name, t) in &self.timings {
            out.push_str("{\"kind\":\"timing\",\"name\":");
            json::escape_into(&mut out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"total_secs\":{:.6}}}",
                t.count,
                t.total.as_secs_f64()
            );
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"kind\":\"histogram\",\"name\":");
            json::escape_into(&mut out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            );
            for (i, (exp, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{exp},{n}]");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// A human-readable rendering: one aligned section per kind, names
    /// alphabetical. Empty sections are omitted; an empty snapshot
    /// renders as the empty string.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.notes.is_empty() {
            let w = self.notes.keys().map(|k| k.len()).max().unwrap_or(0);
            out.push_str("notes\n");
            for (name, value) in &self.notes {
                let _ = writeln!(out, "  {name:<w$}  {value}");
            }
        }
        if !self.counters.is_empty() {
            let w = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            let vw = self
                .counters
                .values()
                .map(|v| v.to_string().len())
                .max()
                .unwrap_or(0);
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<w$}  {value:>vw$}");
            }
        }
        if !self.gauges.is_empty() {
            let w = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            let vw = self
                .gauges
                .values()
                .map(|v| v.to_string().len())
                .max()
                .unwrap_or(0);
            out.push_str("gauges\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<w$}  {value:>vw$}");
            }
        }
        if !self.timings.is_empty() {
            let w = self.timings.keys().map(|k| k.len()).max().unwrap_or(0);
            out.push_str("timings\n");
            for (name, t) in &self.timings {
                let _ = writeln!(
                    out,
                    "  {name:<w$}  {:>6} x  {:>12.6}s",
                    t.count,
                    t.total.as_secs_f64()
                );
            }
        }
        if !self.histograms.is_empty() {
            let w = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            out.push_str("histograms\n");
            for (name, h) in &self.histograms {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                let _ = write!(
                    out,
                    "  {name:<w$}  n={} sum={} mean={mean:.1} buckets=",
                    h.count, h.sum
                );
                for (i, (exp, n)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let lo: u128 = if *exp == 0 { 0 } else { 1u128 << (exp - 1) };
                    let _ = write!(out, "{lo}+:{n}");
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.enabled());
        let c = reg.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        reg.add("x", 5);
        reg.observe("h", 3);
        reg.record_duration("t", Duration::from_millis(1));
        reg.note("n", "v");
        {
            let _s = reg.span("outer");
        }
        let snap = reg.snapshot();
        assert_eq!(snap, Snapshot::default());
        assert_eq!(reg.to_jsonl(), "");
        assert_eq!(reg.render_table(), "");
    }

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("solver.conflicts");
        let b = reg.counter("solver.conflicts");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter("solver.conflicts"), 4);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let reg = Registry::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            reg.observe("sizes", v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms["sizes"];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]);
    }

    #[test]
    fn spans_record_nested_paths() {
        let reg = Registry::new();
        {
            let _outer = reg.span("translate");
            {
                let _inner = reg.span("encode");
            }
        }
        let snap = reg.snapshot();
        assert_eq!(snap.timings["translate"].count, 1);
        assert_eq!(snap.timings["translate.encode"].count, 1);
        // The stack unwound: a new span is top-level again.
        {
            let _again = reg.span("solve");
        }
        assert_eq!(reg.snapshot().timings["solve"].count, 1);
    }

    #[test]
    fn merge_prefixed_files_under_prefix() {
        let per_query = Registry::new();
        per_query.add("solver.conflicts", 7);
        per_query.observe("learnt.len", 4);
        per_query.record_duration("time.solve", Duration::from_millis(2));
        per_query.note("verdict", "Unsat");

        let total = Registry::new();
        total.merge_from(&per_query);
        total.merge_prefixed(&per_query, "test.MP.");

        let snap = total.snapshot();
        assert_eq!(snap.counter("solver.conflicts"), 7);
        assert_eq!(snap.counter("test.MP.solver.conflicts"), 7);
        assert_eq!(snap.histograms["test.MP.learnt.len"].sum, 4);
        assert_eq!(snap.timings["test.MP.time.solve"].count, 1);
        assert_eq!(snap.notes["test.MP.verdict"], "Unsat");

        // Merging into a disabled registry is a no-op.
        let off = Registry::disabled();
        off.merge_from(&per_query);
        assert_eq!(off.snapshot(), Snapshot::default());
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let reg = Registry::new();
        reg.note("benchmark", "demo");
        reg.add("a.count", 2);
        reg.record_duration("t", Duration::from_micros(1500));
        reg.observe("h", 3);
        let jsonl = reg.to_jsonl();
        assert_eq!(
            jsonl,
            "{\"kind\":\"note\",\"name\":\"benchmark\",\"value\":\"demo\"}\n\
             {\"kind\":\"counter\",\"name\":\"a.count\",\"value\":2}\n\
             {\"kind\":\"timing\",\"name\":\"t\",\"count\":1,\"total_secs\":0.001500}\n\
             {\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":3,\"buckets\":[[2,1]]}\n"
        );
    }

    #[test]
    fn filtered_keeps_matching_names() {
        let reg = Registry::new();
        reg.add("total.x", 1);
        reg.add("test.MP.x", 2);
        let snap = reg.snapshot().filtered(|n| !n.starts_with("test."));
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counter("total.x"), 1);
    }

    #[test]
    fn child_mirrors_enablement() {
        assert!(Registry::new().child().enabled());
        assert!(!Registry::disabled().child().enabled());
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let reg = Registry::new();
        let g = reg.gauge("queue_depth");
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        reg.set_gauge("queue_depth", 11);
        assert_eq!(reg.snapshot().gauge("queue_depth"), 11);
        assert_eq!(reg.snapshot().gauge("absent"), 0);

        // Disabled registries hand out inert gauges.
        let off = Registry::disabled().gauge("x");
        off.set(9);
        assert_eq!(off.get(), 0);

        // Merging overwrites rather than adds.
        let other = Registry::new();
        other.set_gauge("queue_depth", 2);
        reg.merge_from(&other);
        assert_eq!(reg.snapshot().gauge("queue_depth"), 2);
    }

    #[test]
    fn gauges_render_in_jsonl_and_table() {
        let reg = Registry::new();
        reg.set_gauge("g", 5);
        reg.add("c", 1);
        assert_eq!(
            reg.to_jsonl(),
            "{\"kind\":\"counter\",\"name\":\"c\",\"value\":1}\n\
             {\"kind\":\"gauge\",\"name\":\"g\",\"value\":5}\n"
        );
        let table = reg.render_table();
        assert!(table.contains("gauges\n  g  5\n"), "table: {table}");
    }

    #[test]
    fn quantiles_come_from_bucket_edges() {
        let empty = HistSnap::default();
        assert_eq!(empty.p50(), 0);

        let reg = Registry::new();
        // 10 observations: 5 zeros, 4 in [4,8), 1 in [1024,2048).
        for _ in 0..5 {
            reg.observe("lat", 0);
        }
        for _ in 0..4 {
            reg.observe("lat", 5);
        }
        reg.observe("lat", 1500);
        let snap = reg.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.p50(), 0); // rank 5 of 10 lands in the zero bucket
        assert_eq!(h.p90(), 7); // rank 9 lands in [4,8) -> edge 2^3 - 1
        assert_eq!(h.p99(), 2047); // rank 10 lands in [1024,2048)
        assert_eq!(h.quantile(1.0), 2047);
        assert!((h.mean() - 152.0).abs() < 1e-9);

        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(11), 2047);
        assert_eq!(bucket_upper_edge(64), u64::MAX);
    }

    #[test]
    fn json_object_round_trips() {
        let reg = Registry::new();
        reg.add("a.count", 2);
        reg.set_gauge("depth", 4);
        reg.observe("h", 3);
        reg.observe("h", 900);
        reg.record_duration("t", Duration::from_nanos(1_234_567));
        reg.note("bench \"q\"", "v\n2");
        let snap = reg.snapshot();
        let text = snap.to_json_object();
        assert_eq!(
            text,
            "{\"counters\":{\"a.count\":2},\
             \"gauges\":{\"depth\":4},\
             \"histograms\":{\"h\":[2,903,[[2,1],[10,1]]]},\
             \"notes\":{\"bench \\\"q\\\"\":\"v\\n2\"},\
             \"timings\":{\"t\":[1,1234567]}}"
        );
        assert_eq!(Snapshot::from_json(&text).as_ref(), Some(&snap));

        // An empty snapshot still carries every key.
        let empty = Snapshot::default().to_json_object();
        assert_eq!(
            empty,
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"notes\":{},\"timings\":{}}"
        );
        assert_eq!(Snapshot::from_json(&empty), Some(Snapshot::default()));
        assert_eq!(Snapshot::from_json("{\"counters\":{\"a\":-1}}"), None);
        assert_eq!(Snapshot::from_json("nonsense"), None);
    }

    #[test]
    fn deltas_are_additive_over_monotone_kinds() {
        let reg = Registry::new();
        reg.add("c", 1);
        reg.observe("h", 2);
        reg.record_duration("t", Duration::from_micros(10));
        reg.set_gauge("g", 5);
        let s0 = reg.snapshot();

        reg.add("c", 4);
        reg.add("c2", 1);
        reg.observe("h", 2);
        reg.observe("h", 70);
        reg.record_duration("t", Duration::from_micros(7));
        reg.set_gauge("g", 2);
        let s1 = reg.snapshot();

        reg.add("c", 1);
        let s2 = reg.snapshot();

        let d1 = s1.delta(&s0);
        assert_eq!(d1.counter("c"), 4);
        assert_eq!(d1.counter("c2"), 1);
        assert_eq!(d1.histograms["h"].count, 2);
        assert_eq!(d1.histograms["h"].sum, 72);
        assert_eq!(d1.gauge("g"), 2); // changed -> carried
        let d2 = s2.delta(&s1);
        assert!(d2.gauges.is_empty()); // unchanged -> dropped
        assert!(d2.histograms.is_empty());
        assert_eq!(d2.counter("c"), 1);

        // s0 + d1 + d2 == s2 on counters, timings, histograms.
        let mut total = s0.clone();
        total.add_assign(&d1);
        total.add_assign(&d2);
        assert_eq!(total.counters, s2.counters);
        assert_eq!(total.timings, s2.timings);
        assert_eq!(total.histograms, s2.histograms);
        assert_eq!(total.gauges, s2.gauges);

        // A self-delta is empty.
        let idle = s2.delta(&s2);
        assert_eq!(idle, Snapshot::default());
    }
}
