//! Hand-rolled JSON string escaping, shared by every JSON emitter in
//! the workspace.
//!
//! The workspace is hermetic (no serde), so JSON is assembled by hand.
//! Escaping lived in `modelfinder::harness` before this crate existed;
//! it now lives here so the harness, the stats exporters, and the bench
//! emitters all agree, and so the inverse ([`unescape`]) can round-trip
//! test the encoder against arbitrary strings — including control
//! characters, quotes, and backslashes in test names and paths.

/// Appends `value` to `out` as a JSON string literal, surrounding
/// quotes included. Escapes `"` and `\`, uses the short escapes for
/// `\n`, `\r`, `\t`, and `\uXXXX` for the remaining control characters
/// (U+0000–U+001F). Everything else is emitted verbatim as UTF-8,
/// which is valid JSON.
pub fn escape_into(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap());
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// [`escape_into`] as a fresh `String`.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    escape_into(&mut out, value);
    out
}

/// Parses a JSON string literal (surrounding quotes included, exactly
/// the form [`escape`] produces and any standard JSON emitter may
/// produce) back to its value. Accepts all standard escapes, including
/// `\uXXXX` with surrogate pairs. Returns `None` on malformed input.
pub fn unescape(literal: &str) -> Option<String> {
    let mut chars = literal.chars();
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => {
                // Closing quote must end the literal.
                return if chars.next().is_none() {
                    Some(out)
                } else {
                    None
                };
            }
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'b' => out.push('\u{0008}'),
                'f' => out.push('\u{000c}'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hi = hex4(&mut chars)?;
                    let code = if (0xd800..0xdc00).contains(&hi) {
                        // High surrogate: a \uXXXX low surrogate must follow.
                        if chars.next() != Some('\\') || chars.next() != Some('u') {
                            return None;
                        }
                        let lo = hex4(&mut chars)?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return None;
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        hi
                    };
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c if (c as u32) < 0x20 => return None, // raw control char
            c => out.push(c),
        }
    }
}

fn hex4(chars: &mut std::str::Chars<'_>) -> Option<u32> {
    let mut code = 0u32;
    for _ in 0..4 {
        code = code * 16 + chars.next()?.to_digit(16)?;
    }
    Some(code)
}

/// A parsed JSON value.
///
/// Objects preserve key order as a `Vec` of pairs (duplicate keys keep
/// the first occurrence on [`Value::get`]); numbers are `f64`, which
/// covers every value the workspace's emitters produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object (first occurrence); `None` on
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative number
    /// with no fractional part.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // `u64::MAX as f64` rounds up to 2^64, so the comparison must
            // be strict to keep the cast in range.
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(vs) => Some(vs),
            _ => None,
        }
    }
}

/// Maximum container nesting [`parse`] accepts, so adversarial input
/// (`[[[[…`) cannot overflow the stack of a recursive parse.
const MAX_DEPTH: usize = 64;

/// Parses one complete JSON value from `text` (leading and trailing
/// whitespace allowed, nothing else). Returns `None` on malformed
/// input, trailing garbage, or nesting deeper than [`MAX_DEPTH`] — the
/// callers are servers reading untrusted lines, so there are no panics.
pub fn parse(text: &str) -> Option<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, word: &str) -> Option<()> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    /// Scans a string literal (cursor on the opening quote) and
    /// delegates to [`unescape`], the workspace's one string decoder.
    fn string(&mut self) -> Option<String> {
        let start = self.pos;
        self.eat(b'"')?;
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    let literal = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                    return unescape(literal);
                }
                b'\\' => self.pos += 2,
                _ => self.pos += 1,
            }
        }
    }

    fn value(&mut self, depth: usize) -> Option<Value> {
        if depth > MAX_DEPTH {
            return None;
        }
        match self.bytes.get(self.pos)? {
            b'n' => self.literal("null").map(|()| Value::Null),
            b't' => self.literal("true").map(|()| Value::Bool(true)),
            b'f' => self.literal("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut vs = Vec::new();
                self.skip_ws();
                if self.eat(b']').is_some() {
                    return Some(Value::Arr(vs));
                }
                loop {
                    self.skip_ws();
                    vs.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']').is_some() {
                        return Some(Value::Arr(vs));
                    }
                    self.eat(b',')?;
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.eat(b'}').is_some() {
                    return Some(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    pairs.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    if self.eat(b'}').is_some() {
                        return Some(Value::Obj(pairs));
                    }
                    self.eat(b',')?;
                }
            }
            _ => {
                let start = self.pos;
                while matches!(
                    self.bytes.get(self.pos),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let tok = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                tok.parse::<f64>()
                    .ok()
                    .filter(|n| n.is_finite())
                    .map(Value::Num)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb\rc\td"), "\"a\\nb\\rc\\td\"");
        assert_eq!(
            escape("\u{0000}\u{0001}\u{001f}"),
            "\"\\u0000\\u0001\\u001f\""
        );
        // Non-ASCII passes through verbatim.
        assert_eq!(escape("π/2 ≤ 𝛕"), "\"π/2 ≤ 𝛕\"");
    }

    #[test]
    fn unescape_inverts_escape() {
        for s in [
            "",
            "plain",
            "quote\" backslash\\ slash/",
            "line\nfeed\r tab\t",
            "ctrl\u{0001}\u{001f}\u{0000}done",
            "unicode π 𝛕 \u{10348}",
        ] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "round-trip {s:?}");
        }
    }

    #[test]
    fn unescape_accepts_standard_escapes_we_never_emit() {
        assert_eq!(unescape("\"a\\/b\"").as_deref(), Some("a/b"));
        assert_eq!(unescape("\"\\b\\f\"").as_deref(), Some("\u{0008}\u{000c}"));
        // BMP \u escape and a surrogate pair (U+1D40C).
        assert_eq!(unescape("\"\\u03c0\"").as_deref(), Some("π"));
        assert_eq!(unescape("\"\\ud835\\udd0c\"").as_deref(), Some("\u{1d50c}"));
    }

    #[test]
    fn parse_accepts_the_workspace_shapes() {
        let v = parse(r#"{"id":7,"op":"run","ok":true,"wall":0.25,"xs":[1,2,3],"n":null}"#)
            .expect("valid object");
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("op").and_then(Value::as_str), Some("run"));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("wall").and_then(Value::as_f64), Some(0.25));
        assert_eq!(
            v.get("xs").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("  [ ]  "), Some(Value::Arr(vec![])));
        assert_eq!(parse("{}"), Some(Value::Obj(vec![])));
        assert_eq!(parse("-12.5e2"), Some(Value::Num(-1250.0)));
        assert_eq!(
            parse(r#""a\nb""#).as_ref().and_then(Value::as_str),
            Some("a\nb")
        );
    }

    #[test]
    fn parse_round_trips_escaped_strings() {
        for s in ["plain", "quote\" backslash\\", "line\nfeed", "π 𝛕"] {
            let v = parse(&escape(s)).expect("escaped string parses");
            assert_eq!(v.as_str(), Some(s));
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "nulll",
            "1 2",
            "{} {}",
            "'single'",
            "NaN",
            "Infinity",
            "\"unterminated",
            "{\"a\":1,}",
            "[1,]",
        ] {
            assert_eq!(parse(bad), None, "should reject {bad:?}");
        }
        // Nesting deeper than MAX_DEPTH is rejected, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(parse(&deep), None);
        let shallow = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&shallow).is_some());
    }

    #[test]
    fn as_u64_guards_fractions_and_sign() {
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), None); // rounds past u64::MAX
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("4096").unwrap().as_u64(), Some(4096));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn unescape_rejects_malformed() {
        for bad in [
            "noquotes",
            "\"unterminated",
            "\"trailing\"x",
            "\"bad escape \\q\"",
            "\"raw control \u{0001}\"",
            "\"short hex \\u12\"",
            "\"lone high surrogate \\ud835\"",
            "\"high then not-low \\ud835\\u0041\"",
            "\"lone low surrogate \\udd0c ok\"",
        ] {
            assert_eq!(unescape(bad), None, "should reject {bad:?}");
        }
    }
}
