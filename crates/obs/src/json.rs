//! Hand-rolled JSON string escaping, shared by every JSON emitter in
//! the workspace.
//!
//! The workspace is hermetic (no serde), so JSON is assembled by hand.
//! Escaping lived in `modelfinder::harness` before this crate existed;
//! it now lives here so the harness, the stats exporters, and the bench
//! emitters all agree, and so the inverse ([`unescape`]) can round-trip
//! test the encoder against arbitrary strings — including control
//! characters, quotes, and backslashes in test names and paths.

/// Appends `value` to `out` as a JSON string literal, surrounding
/// quotes included. Escapes `"` and `\`, uses the short escapes for
/// `\n`, `\r`, `\t`, and `\uXXXX` for the remaining control characters
/// (U+0000–U+001F). Everything else is emitted verbatim as UTF-8,
/// which is valid JSON.
pub fn escape_into(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap());
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// [`escape_into`] as a fresh `String`.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    escape_into(&mut out, value);
    out
}

/// Parses a JSON string literal (surrounding quotes included, exactly
/// the form [`escape`] produces and any standard JSON emitter may
/// produce) back to its value. Accepts all standard escapes, including
/// `\uXXXX` with surrogate pairs. Returns `None` on malformed input.
pub fn unescape(literal: &str) -> Option<String> {
    let mut chars = literal.chars();
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => {
                // Closing quote must end the literal.
                return if chars.next().is_none() {
                    Some(out)
                } else {
                    None
                };
            }
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'b' => out.push('\u{0008}'),
                'f' => out.push('\u{000c}'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hi = hex4(&mut chars)?;
                    let code = if (0xd800..0xdc00).contains(&hi) {
                        // High surrogate: a \uXXXX low surrogate must follow.
                        if chars.next() != Some('\\') || chars.next() != Some('u') {
                            return None;
                        }
                        let lo = hex4(&mut chars)?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return None;
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        hi
                    };
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c if (c as u32) < 0x20 => return None, // raw control char
            c => out.push(c),
        }
    }
}

fn hex4(chars: &mut std::str::Chars<'_>) -> Option<u32> {
    let mut code = 0u32;
    for _ in 0..4 {
        code = code * 16 + chars.next()?.to_digit(16)?;
    }
    Some(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb\rc\td"), "\"a\\nb\\rc\\td\"");
        assert_eq!(
            escape("\u{0000}\u{0001}\u{001f}"),
            "\"\\u0000\\u0001\\u001f\""
        );
        // Non-ASCII passes through verbatim.
        assert_eq!(escape("π/2 ≤ 𝛕"), "\"π/2 ≤ 𝛕\"");
    }

    #[test]
    fn unescape_inverts_escape() {
        for s in [
            "",
            "plain",
            "quote\" backslash\\ slash/",
            "line\nfeed\r tab\t",
            "ctrl\u{0001}\u{001f}\u{0000}done",
            "unicode π 𝛕 \u{10348}",
        ] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "round-trip {s:?}");
        }
    }

    #[test]
    fn unescape_accepts_standard_escapes_we_never_emit() {
        assert_eq!(unescape("\"a\\/b\"").as_deref(), Some("a/b"));
        assert_eq!(unescape("\"\\b\\f\"").as_deref(), Some("\u{0008}\u{000c}"));
        // BMP \u escape and a surrogate pair (U+1D40C).
        assert_eq!(unescape("\"\\u03c0\"").as_deref(), Some("π"));
        assert_eq!(unescape("\"\\ud835\\udd0c\"").as_deref(), Some("\u{1d50c}"));
    }

    #[test]
    fn unescape_rejects_malformed() {
        for bad in [
            "noquotes",
            "\"unterminated",
            "\"trailing\"x",
            "\"bad escape \\q\"",
            "\"raw control \u{0001}\"",
            "\"short hex \\u12\"",
            "\"lone high surrogate \\ud835\"",
            "\"high then not-low \\ud835\\u0041\"",
            "\"lone low surrogate \\udd0c ok\"",
        ] {
            assert_eq!(unescape(bad), None, "should reject {bad:?}");
        }
    }
}
