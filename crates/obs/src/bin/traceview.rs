//! `traceview` — offline summarizer for Chrome trace-event JSON files
//! written by `--trace-out` (ptxherd, fig17_table, fuzzherd).
//!
//! ```text
//! traceview trace.json           # top spans by self-time + per-query phases
//! traceview --top N trace.json   # show N rows per table
//! traceview --diff a.json b.json # self-time regression diff
//! ```
//!
//! The summary has two tables: **top spans by self-time** (time inside a
//! span minus time in its nested child spans, aggregated by span name
//! across all threads), and **per-query phase attribution** (for every
//! `query:<name>` span, how its wall time splits into translate / encode
//! / solve / other). `--diff` compares the per-name self-times of two
//! traces — the regression-hunting mode: capture a trace before and
//! after a change and see which phase moved.
//!
//! The parser accepts the subset of JSON these exporters emit (and any
//! standard trace-event array); a malformed file is an error and a
//! nonzero exit, which is what the CI smoke check relies on.

use std::collections::BTreeMap;
use std::fmt::Write;
use std::io;
use std::process::ExitCode;

/// A parsed JSON value — just enough of the data model for trace files.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over the whole file.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_document(&mut self) -> Result<Value, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing content after JSON document"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.error("expected a string"));
        }
        let start = self.pos;
        self.pos += 1;
        // Scan to the closing quote, honoring backslash escapes, then
        // hand the full literal to the workspace's JSON string decoder.
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'\\') => self.pos += 2,
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
            }
        }
        let literal = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid UTF-8 in string"))?;
        obs::json::unescape(literal).ok_or_else(|| self.error("malformed string escape"))
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error(&format!("bad number `{text}`")))
    }
}

/// One span/instant/counter event lifted out of the parsed array.
struct Event {
    ph: char,
    tid: u64,
    ts_us: f64,
    name: String,
}

/// Per-name aggregates from one trace file.
#[derive(Default)]
struct Summary {
    /// name -> (count, total µs, self µs).
    spans: BTreeMap<String, (u64, f64, f64)>,
    /// query name -> phase -> self µs (phases: translate/encode/solve/other).
    queries: BTreeMap<String, BTreeMap<String, f64>>,
    instants: BTreeMap<String, u64>,
    counters: BTreeMap<String, f64>,
    unbalanced: u64,
}

/// Loads a trace file: parse, validate shape, lift events.
fn load(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Parser::new(&text)
        .parse_document()
        .map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let Value::Arr(items) = doc else {
        return Err(format!("{path}: expected a top-level trace-event array"));
    };
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let ph = item
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: event {i}: missing \"ph\""))?;
        let name = item
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: event {i}: missing \"name\""))?;
        let ph = ph.chars().next().unwrap_or('?');
        if ph == 'M' {
            continue; // metadata (thread names)
        }
        let tid = item.get("tid").and_then(Value::as_num).unwrap_or(0.0) as u64;
        let ts_us = item
            .get("ts")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("{path}: event {i}: missing \"ts\""))?;
        events.push(Event {
            ph,
            tid,
            ts_us,
            name: name.to_string(),
        });
    }
    Ok(events)
}

/// Aggregates events into per-span self-times and per-query phases.
///
/// Self-time is a span's wall time minus the wall time of spans nested
/// inside it on the same thread. Each closed span is also attributed to
/// the innermost enclosing `query:<name>` span, bucketed as its phase
/// (`translate`/`encode`/`solve`, anything else as `other`); the query
/// span's own self-time lands in `other`.
fn summarize(events: &[Event]) -> Summary {
    let mut summary = Summary::default();
    // Per-thread stack of open spans: (name, start ts, child time).
    let mut stacks: BTreeMap<u64, Vec<(String, f64, f64)>> = BTreeMap::new();
    for e in events {
        match e.ph {
            'B' => stacks
                .entry(e.tid)
                .or_default()
                .push((e.name.clone(), e.ts_us, 0.0)),
            'E' => {
                let stack = stacks.entry(e.tid).or_default();
                // Tolerate truncated traces (ring wraparound drops old
                // events, so an E may arrive with no matching B).
                let Some(top) = stack.last() else {
                    summary.unbalanced += 1;
                    continue;
                };
                if top.0 != e.name {
                    summary.unbalanced += 1;
                    continue;
                }
                let (name, start, child_time) = stack.pop().unwrap();
                let total = (e.ts_us - start).max(0.0);
                let self_time = (total - child_time).max(0.0);
                if let Some(parent) = stack.last_mut() {
                    parent.2 += total;
                }
                let entry = summary.spans.entry(name.clone()).or_insert((0, 0.0, 0.0));
                entry.0 += 1;
                entry.1 += total;
                entry.2 += self_time;
                // Attribute to the innermost enclosing query span.
                let query = if name.starts_with("query:") {
                    Some(name.trim_start_matches("query:").to_string())
                } else {
                    stack
                        .iter()
                        .rev()
                        .find(|(n, _, _)| n.starts_with("query:"))
                        .map(|(n, _, _)| n.trim_start_matches("query:").to_string())
                };
                if let Some(q) = query {
                    let phase = match name.as_str() {
                        "translate" | "encode" | "solve" => name.as_str(),
                        _ => "other",
                    };
                    *summary
                        .queries
                        .entry(q)
                        .or_default()
                        .entry(phase.to_string())
                        .or_insert(0.0) += self_time;
                }
            }
            'i' => *summary.instants.entry(e.name.clone()).or_insert(0) += 1,
            'C' => {
                // Keep the latest sample per counter name.
                summary.counters.insert(e.name.clone(), e.ts_us);
            }
            _ => {}
        }
    }
    // Spans still open at snapshot time (e.g. a hung worker) count as
    // unbalanced too.
    summary.unbalanced += stacks.values().map(|s| s.len() as u64).sum::<u64>();
    summary
}

fn render_summary(out: &mut String, summary: &Summary, top: usize) {
    let _ = writeln!(out, "top spans by self-time:");
    let _ = writeln!(
        out,
        "  {:<28} {:>8} {:>14} {:>14}",
        "span", "count", "total", "self"
    );
    let mut rows: Vec<(&String, &(u64, f64, f64))> = summary.spans.iter().collect();
    rows.sort_by(|a, b| {
        b.1 .2
            .partial_cmp(&a.1 .2)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (name, (count, total, self_time)) in rows.iter().take(top) {
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>13.3}ms {:>13.3}ms",
            name,
            count,
            total / 1000.0,
            self_time / 1000.0
        );
    }
    if !summary.queries.is_empty() {
        let _ = writeln!(out, "\nper-query phase attribution (self-time ms):");
        let _ = writeln!(
            out,
            "  {:<28} {:>10} {:>10} {:>10} {:>10}",
            "query", "translate", "encode", "solve", "other"
        );
        let mut rows: Vec<(&String, f64, &BTreeMap<String, f64>)> = summary
            .queries
            .iter()
            .map(|(q, phases)| (q, phases.values().sum::<f64>(), phases))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (query, _, phases) in rows.iter().take(top) {
            let f = |k: &str| phases.get(k).copied().unwrap_or(0.0) / 1000.0;
            let _ = writeln!(
                out,
                "  {:<28} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                query,
                f("translate"),
                f("encode"),
                f("solve"),
                f("other")
            );
        }
    }
    if !summary.instants.is_empty() {
        let _ = writeln!(out, "\ninstant events:");
        for (name, count) in &summary.instants {
            let _ = writeln!(out, "  {name:<28} x{count}");
        }
    }
    if summary.unbalanced > 0 {
        let _ = writeln!(
            out,
            "\nnote: {} unbalanced span event(s) — ring wraparound or spans \
             still open at snapshot time",
            summary.unbalanced
        );
    }
}

/// Renders the self-time differences between two traces, largest first.
fn render_diff(out: &mut String, a: &Summary, b: &Summary, top: usize) {
    let names: std::collections::BTreeSet<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    let _ = writeln!(
        out,
        "  {:<28} {:>14} {:>14} {:>12}",
        "span (self-time)", "baseline", "candidate", "delta"
    );
    let mut rows: Vec<(&String, f64, f64)> = names
        .into_iter()
        .map(|n| {
            let sa = a.spans.get(n).map_or(0.0, |v| v.2);
            let sb = b.spans.get(n).map_or(0.0, |v| v.2);
            (n, sa, sb)
        })
        .collect();
    rows.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .partial_cmp(&(x.2 - x.1).abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (name, sa, sb) in rows.iter().take(top) {
        let _ = writeln!(
            out,
            "  {:<28} {:>13.3}ms {:>13.3}ms {:>+11.3}ms",
            name,
            sa / 1000.0,
            sb / 1000.0,
            (sb - sa) / 1000.0
        );
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: traceview [--top N] <trace.json> | traceview --diff <a.json> <b.json>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut top = 20usize;
    let mut diff = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--diff" => diff = true,
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => top = n,
                _ => return usage(),
            },
            other if other.starts_with("--") => return usage(),
            path => files.push(path.to_string()),
        }
    }
    let expected = if diff { 2 } else { 1 };
    if files.len() != expected {
        return usage();
    }
    let summaries: Vec<Summary> = {
        let mut out = Vec::new();
        for path in &files {
            match load(path) {
                Ok(events) => out.push(summarize(&events)),
                Err(e) => {
                    eprintln!("traceview: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        out
    };
    let mut report = String::new();
    if diff {
        render_diff(&mut report, &summaries[0], &summaries[1], top);
    } else {
        render_summary(&mut report, &summaries[0], top);
    }
    // One buffered write; a closed pipe (`traceview ... | head`) is not
    // an error worth a nonzero exit once the summary is computed.
    let _ = io::Write::write_all(&mut io::stdout(), report.as_bytes());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Value, String> {
        Parser::new(text).parse_document()
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_string()));
        let doc = parse("{\"a\":[1,{\"b\":[]}],\"c\":{}}").unwrap();
        assert_eq!(
            doc.get("a").and_then(|v| match v {
                Value::Arr(items) => items.first().and_then(Value::as_num),
                _ => Option::None,
            }),
            Some(1.0)
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "[1,",
            "{\"a\":}",
            "[1] trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let events = vec![
            Event {
                ph: 'B',
                tid: 0,
                ts_us: 0.0,
                name: "query:MP".into(),
            },
            Event {
                ph: 'B',
                tid: 0,
                ts_us: 10.0,
                name: "solve".into(),
            },
            Event {
                ph: 'E',
                tid: 0,
                ts_us: 110.0,
                name: "solve".into(),
            },
            Event {
                ph: 'E',
                tid: 0,
                ts_us: 120.0,
                name: "query:MP".into(),
            },
        ];
        let s = summarize(&events);
        assert_eq!(s.spans["solve"], (1, 100.0, 100.0));
        let q = &s.spans["query:MP"];
        assert_eq!((q.0, q.1, q.2), (1, 120.0, 20.0));
        assert_eq!(s.queries["MP"]["solve"], 100.0);
        assert_eq!(s.queries["MP"]["other"], 20.0);
        assert_eq!(s.unbalanced, 0);
    }

    #[test]
    fn unbalanced_events_are_counted_not_fatal() {
        let events = vec![
            Event {
                ph: 'E',
                tid: 0,
                ts_us: 5.0,
                name: "solve".into(),
            },
            Event {
                ph: 'B',
                tid: 0,
                ts_us: 10.0,
                name: "encode".into(),
            },
        ];
        let s = summarize(&events);
        assert_eq!(s.unbalanced, 2);
        assert!(s.spans.is_empty());
    }

    #[test]
    fn threads_do_not_interleave_stacks() {
        let events = vec![
            Event {
                ph: 'B',
                tid: 0,
                ts_us: 0.0,
                name: "solve".into(),
            },
            Event {
                ph: 'B',
                tid: 1,
                ts_us: 1.0,
                name: "solve".into(),
            },
            Event {
                ph: 'E',
                tid: 0,
                ts_us: 10.0,
                name: "solve".into(),
            },
            Event {
                ph: 'E',
                tid: 1,
                ts_us: 21.0,
                name: "solve".into(),
            },
        ];
        let s = summarize(&events);
        assert_eq!(s.spans["solve"].0, 2);
        assert_eq!(s.spans["solve"].1, 30.0);
        assert_eq!(s.unbalanced, 0);
    }
}
