//! In-repo test support, replacing the external `rand`/`proptest`/
//! `criterion` stack so the workspace builds and tests with no network
//! access (an empty registry cache).
//!
//! Three pieces:
//!
//! * [`Rng`] — a SplitMix64 pseudo-random generator (Steele, Lea &
//!   Flood 2014; the seeding generator of `xoshiro`), deterministic and
//!   good enough for test-case generation;
//! * [`forall`] — a seeded property-test loop: runs a closure over many
//!   independently seeded generators and reports the failing case's seed
//!   so it can be replayed with [`check_seed`];
//! * [`bench`] — a minimal wall-clock timer for the `benches/` targets.

#![warn(missing_docs)]

pub mod bench;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// let mut rng = testkit::Rng::seed(42);
/// let a = rng.below(10);
/// assert!(a < 10);
/// let b = rng.range(5, 8);
/// assert!((5..8).contains(&b));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound`. `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift range reduction (Lemire); the slight bias is
        // irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in `lo..hi` (half-open). `lo < hi` required.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `usize` in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform value in a half-open `Range`, the `std::ops::Range`
    /// spelling of [`Rng::range`]: `rng.gen_range(5..8)`.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.range(range.start, range.end)
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Uniformly permutes a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A vector of `len` items drawn from `gen`, with `len` uniform in
    /// `min_len..=max_len`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.range(min_len as u64, max_len as u64 + 1) as usize;
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Base seed for [`forall`], overridable via the `TESTKIT_SEED`
/// environment variable for soak runs.
fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D00D)
}

/// Derives the per-case seed used by [`forall`] for `case` under `name`.
pub fn case_seed(name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the base seed and case index
    // through one SplitMix64 round so cases are decorrelated.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    Rng::seed(base_seed() ^ h ^ (u64::from(case) << 32)).next_u64()
}

/// Runs `cases` independently seeded executions of `body`, panicking with
/// a replayable seed on the first failure.
///
/// The replacement for a `proptest!` block: generate inputs from the
/// provided [`Rng`] and assert properties with ordinary `assert!`s. On
/// failure the case index and seed are printed; rerun just that case
/// with [`check_seed`] while debugging.
///
/// # Examples
///
/// ```
/// testkit::forall("addition_commutes", 64, |rng| {
///     let (a, b) = (rng.below(1000), rng.below(1000));
///     assert_eq!(a + b, b + a);
/// });
/// ```
pub fn forall(name: &str, cases: u32, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::seed(seed);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "forall `{name}`: case {case}/{cases} failed \
                 (replay with testkit::check_seed(\"{name}\", {seed:#x}, ...))"
            );
            resume_unwind(payload);
        }
    }
}

/// Replays a single [`forall`] case from the seed it reported.
pub fn check_seed(name: &str, seed: u64, mut body: impl FnMut(&mut Rng)) {
    let _ = name; // names the failure being replayed, for the reader
    let mut rng = Rng::seed(seed);
    body(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the SplitMix64
        // reference implementation (Vigna's splitmix64.c).
        let mut rng = Rng::seed(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn determinism_and_stream_independence() {
        let a: Vec<u64> = {
            let mut r = Rng::seed(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::seed(10);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut rng = Rng::seed(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
            assert!(rng.index(3) < 3);
        }
        // Tiny bound exercises the reduction's edge.
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed(4);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut rng = Rng::seed(5);
        for _ in 0..200 {
            let v = rng.vec_of(2, 5, |r| r.below(3));
            assert!((2..=5).contains(&v.len()));
        }
        let empty = rng.vec_of(0, 0, |r| r.below(3));
        assert!(empty.is_empty());
    }

    #[test]
    fn gen_range_matches_range() {
        let mut a = Rng::seed(11);
        let mut b = Rng::seed(11);
        for _ in 0..200 {
            assert_eq!(a.gen_range(3..17), b.range(3, 17));
        }
    }

    #[test]
    fn shuffle_permutes_and_is_deterministic() {
        let mut rng = Rng::seed(12);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        // Same multiset…
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        // …deterministic under the seed…
        let mut w: Vec<u32> = (0..20).collect();
        Rng::seed(12).shuffle(&mut w);
        assert_eq!(v, w);
        // …and actually permutes (overwhelmingly likely for 20 elements).
        assert_ne!(v, (0..20).collect::<Vec<u32>>());
        // Degenerate sizes are fine.
        rng.shuffle::<u32>(&mut []);
        let mut one = [7u32];
        rng.shuffle(&mut one);
        assert_eq!(one, [7]);
    }

    #[test]
    fn forall_runs_every_case() {
        let mut count = 0;
        forall("counting", 17, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn forall_failure_reports_replayable_seed() {
        // The failing seed printed by forall must reproduce under
        // check_seed with the same derivation.
        let failing = case_seed("always_fails", 0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("always_fails", 4, |rng| {
                assert!(rng.below(10) == u64::MAX, "always fails");
            });
        }));
        assert!(result.is_err());
        let replay = catch_unwind(AssertUnwindSafe(|| {
            check_seed("always_fails", failing, |rng| {
                assert!(rng.below(10) == u64::MAX, "always fails");
            });
        }));
        assert!(replay.is_err());
    }
}
