//! A minimal wall-clock benchmark runner for the workspace's `benches/`
//! targets (plain `harness = false` binaries), replacing `criterion`.
//!
//! Each measurement runs a warmup iteration, then `samples` timed
//! iterations, and prints min/median/max. Not statistically rigorous —
//! the point is trend visibility with zero external dependencies.

use std::time::{Duration, Instant};

/// One named measurement group, mirroring criterion's `benchmark_group`.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: u32,
}

impl Group {
    /// Creates a group printing under `name`, with 10 samples per bench.
    pub fn new(name: &str) -> Group {
        Group {
            name: name.to_string(),
            samples: 10,
        }
    }

    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: u32) -> &mut Group {
        self.samples = samples.max(1);
        self
    }

    /// Times `body` and prints one result line.
    pub fn bench(&self, id: &str, mut body: impl FnMut()) {
        body(); // warmup
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                body();
                t0.elapsed()
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        println!(
            "{}/{id}: median {:?} (min {:?}, max {:?}, n={})",
            self.name,
            median,
            times[0],
            times[times.len() - 1],
            self.samples
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let mut count = 0u32;
        let mut g = Group::new("g");
        g.sample_size(3);
        g.bench("id", || count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn sample_size_floor_is_one() {
        let mut g = Group::new("g");
        g.sample_size(0);
        let mut count = 0u32;
        g.bench("id", || count += 1);
        assert_eq!(count, 2);
    }
}
